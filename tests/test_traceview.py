"""Tests for the trace viewer."""

from __future__ import annotations

from repro.sim import Cluster, LinkTimings
from repro.sim.topology import source_links
from repro.sim.trace import TraceLog
from repro.sim.traceview import (
    render_message_flow,
    render_process_timeline,
    summarize_trace,
)
from repro.core import OmegaConfig, make_factory


def traced_run() -> Cluster:
    cluster = Cluster.build(
        3, make_factory("comm-efficient", OmegaConfig()),
        links=source_links(3, 1, LinkTimings(gst=2.0)), seed=5, trace=True)
    cluster.start_all()
    cluster.run_until(20.0)
    return cluster


class TestMessageFlow:
    def test_lists_sends_with_outcomes(self) -> None:
        cluster = traced_run()
        text = render_message_flow(cluster.trace, limit=50)
        assert "─Alive→" in text
        assert "delivered +" in text

    def test_drops_annotated(self) -> None:
        cluster = traced_run()
        text = render_message_flow(cluster.trace, limit=10_000)
        assert "DROPPED (link)" in text, \
            "fair-lossy links must have dropped something in 20s"

    def test_time_window_filter(self) -> None:
        cluster = traced_run()
        text = render_message_flow(cluster.trace, start=5.0, end=6.0,
                                   limit=10_000)
        for line in text.splitlines():
            if line.startswith("t="):
                time = float(line.split("p")[0].replace("t=", "").strip())
                assert 5.0 <= time <= 6.0

    def test_pid_filter(self) -> None:
        cluster = traced_run()
        text = render_message_flow(cluster.trace, pids=[2], limit=10_000)
        for line in text.splitlines():
            if line.startswith("t="):
                assert "p2" in line

    def test_kind_filter_and_empty(self) -> None:
        cluster = traced_run()
        assert render_message_flow(cluster.trace,
                                   kinds=["NoSuchKind"]) == \
            "(no messages matched)"

    def test_limit_truncates(self) -> None:
        cluster = traced_run()
        text = render_message_flow(cluster.trace, limit=3)
        assert "truncated at 3" in text
        assert sum(1 for line in text.splitlines()
                   if line.startswith("t=")) == 3


class TestProcessTimeline:
    def test_send_recv_lines(self) -> None:
        cluster = traced_run()
        text = render_process_timeline(cluster.trace, 1, limit=10_000)
        assert "send Alive" in text
        assert "recv" in text

    def test_crash_line(self) -> None:
        cluster = traced_run()
        cluster.crash(2)
        text = render_process_timeline(cluster.trace, 2, limit=10_000)
        assert "CRASH" in text

    def test_unknown_pid_empty(self) -> None:
        cluster = traced_run()
        assert render_process_timeline(cluster.trace, 99) == \
            "(no events for p99)"


class TestSummary:
    def test_per_kind_counts(self) -> None:
        cluster = traced_run()
        text = summarize_trace(cluster.trace)
        assert "Alive" in text
        assert "sent" in text and "delivered" in text

    def test_empty_trace(self) -> None:
        assert summarize_trace(TraceLog(enabled=True)) == "(empty trace)"

    def test_counts_are_consistent(self) -> None:
        cluster = traced_run()
        text = summarize_trace(cluster.trace)
        alive_line = next(line for line in text.splitlines()
                          if line.startswith("Alive"))
        _, sent, delivered, dropped = alive_line.split()
        assert int(sent) >= int(delivered) + int(dropped) - 1
        assert int(sent) == cluster.metrics.sent_by_kind["Alive"]
