"""Tests for the soak harness: determinism, model judging, execution."""

from __future__ import annotations

import pytest

from repro.harness.soak import (
    campaign_digest,
    run_soak_case,
    sample_soak_case,
    soak,
)
from repro.sim.nemesis import model_violations


class TestDeterminism:
    def test_cases_reproducible_from_seed_and_index(self) -> None:
        first = [sample_soak_case(7, i) for i in range(30)]
        second = [sample_soak_case(7, i) for i in range(30)]
        assert first == second

    def test_index_is_random_access(self) -> None:
        # Case 17 must not depend on having sampled cases 0..16 first.
        assert sample_soak_case(7, 17) == sample_soak_case(7, 17)

    def test_identical_digests_across_runs(self) -> None:
        # The acceptance check behind `repro soak --cases N --seed S`:
        # two independent samplings of the same campaign hash alike.
        first = campaign_digest([sample_soak_case(7, i) for i in range(50)])
        second = campaign_digest([sample_soak_case(7, i) for i in range(50)])
        assert first == second

    def test_different_seeds_give_different_digests(self) -> None:
        a = campaign_digest([sample_soak_case(1, i) for i in range(20)])
        b = campaign_digest([sample_soak_case(2, i) for i in range(20)])
        assert a != b


class TestSampling:
    def test_campaigns_cover_all_algorithms_and_stacks(self) -> None:
        cases = [sample_soak_case(0, i) for i in range(200)]
        algorithms = {c.algorithm for c in cases if c.kind == "omega"}
        kinds = {c.kind for c in cases}
        assert algorithms == {"all-timely", "source", "comm-efficient",
                              "f-source"}
        assert kinds == {"omega", "single-decree", "log"}

    def test_sampled_campaigns_are_in_model(self) -> None:
        for index in range(200):
            case = sample_soak_case(3, index)
            assert model_violations(case.fault_plan(), case.envelope()) == []

    def test_describe_is_one_line_and_complete(self) -> None:
        case = sample_soak_case(5, 0)
        text = case.describe()
        assert "\n" not in text
        assert f"#{case.index}" in text and f"seed={case.seed}" in text


class TestModelJudging:
    def test_out_of_model_campaign_reported_not_run(self) -> None:
        # The acceptance scenario: crash the only ◇source under
        # source-lossy.  Without the model check this would likely
        # *pass* the invariants vacuously or fail confusingly; it must
        # be reported as a model violation instead.
        base = sample_soak_case(7, 0)
        case = type(base)(
            index=0, kind="omega", algorithm="comm-efficient",
            system="source-lossy", n=5, source=2, targets=(), f=2,
            seed=11, gst=5.0, fair_loss=0.2, horizon=300.0,
            plan="crash(t=20.0,pid=2)")
        result = run_soak_case(case)
        assert result.status == "model-violation"
        assert "source" in result.detail
        assert result.ok, "model violations are not invariant failures"

    def test_persistent_disturbance_reported(self) -> None:
        base = sample_soak_case(7, 1)
        case = type(base)(
            index=1, kind="omega", algorithm="source", system="source",
            n=4, source=0, targets=(), f=1, seed=3, gst=2.0,
            fair_loss=0.1, horizon=300.0,
            plan="partition(start=10.0,end=299.0,groups=0.1|2.3)")
        result = run_soak_case(case)
        assert result.status == "model-violation"
        assert "persists" in result.detail


class TestExecution:
    def test_small_campaign_passes(self) -> None:
        results = soak(cases=6, soak_seed=7)
        assert len(results) == 6
        failures = [r for r in results if r.status == "fail"]
        assert not failures, "\n".join(
            f"{r.case.describe()} -- {r.detail}" for r in failures)

    def test_only_filter_replays_single_case(self) -> None:
        results = soak(cases=10, soak_seed=7, only=(4,))
        assert [r.case.index for r in results] == [4]
        full = soak(cases=10, soak_seed=7)
        assert results[0].case == full[4].case
        assert results[0].status == full[4].status

    def test_exactly_one_budget_required(self) -> None:
        with pytest.raises(ValueError):
            soak()
        with pytest.raises(ValueError):
            soak(cases=5, minutes=1.0)
        with pytest.raises(ValueError):
            soak(cases=0)

    def test_minutes_budget_stops(self) -> None:
        # A microscopic wall-clock budget still samples at least zero
        # cases and terminates promptly.
        results = soak(minutes=1e-9, soak_seed=0)
        assert results == []
