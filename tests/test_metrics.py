"""Unit tests for message-flow metrics."""

from __future__ import annotations

import pytest

from repro.sim.metrics import MetricsCollector


def feed(collector: MetricsCollector,
         events: list[tuple[float, int, int, str]]) -> None:
    for time, src, dst, kind in events:
        collector.on_send(time, src, dst, kind)


class TestTotals:
    def test_totals_by_sender_kind_link(self) -> None:
        m = MetricsCollector(window=1.0)
        feed(m, [(0.1, 0, 1, "A"), (0.2, 0, 2, "A"), (0.3, 1, 0, "B")])
        assert m.total_sent == 3
        assert m.sent_by_sender[0] == 2
        assert m.sent_by_kind["A"] == 2
        assert m.sent_by_link[(0, 1)] == 1

    def test_deliver_and_drop_counters(self) -> None:
        m = MetricsCollector()
        m.on_deliver(0.5, 0, 1, "A")
        m.on_drop(0.6, 0, 2, "A", "link")
        m.on_drop(0.7, 0, 2, "A", "dst_crashed")
        assert m.delivered_by_kind["A"] == 1
        assert m.dropped_by_reason["link"] == 1
        assert m.dropped_by_reason["dst_crashed"] == 1

    def test_window_must_be_positive(self) -> None:
        with pytest.raises(ValueError):
            MetricsCollector(window=0.0)


class TestWindows:
    def test_senders_between(self) -> None:
        m = MetricsCollector(window=1.0)
        feed(m, [(0.5, 0, 1, "A"), (1.5, 1, 0, "A"), (5.5, 2, 0, "A")])
        assert m.senders_between(0.0, 2.0) == {0, 1}
        assert m.senders_between(5.0, 6.0) == {2}
        assert m.senders_between(3.0, 4.0) == set()

    def test_links_between(self) -> None:
        m = MetricsCollector(window=1.0)
        feed(m, [(0.5, 0, 1, "A"), (0.6, 0, 2, "A"), (9.5, 1, 0, "A")])
        assert m.links_between(0.0, 1.0) == {(0, 1), (0, 2)}
        assert m.links_between(9.0, 10.0) == {(1, 0)}

    def test_messages_between(self) -> None:
        m = MetricsCollector(window=1.0)
        feed(m, [(0.5, 0, 1, "A"), (0.7, 0, 1, "A"), (2.5, 0, 1, "A")])
        assert m.messages_between(0.0, 1.0) == 2
        assert m.messages_between(0.0, 3.0) == 3

    def test_bad_window_query_rejected(self) -> None:
        m = MetricsCollector()
        with pytest.raises(ValueError):
            m.senders_between(5.0, 1.0)

    def test_sum_of_windows_equals_total(self) -> None:
        m = MetricsCollector(window=2.0)
        events = [(float(i) * 0.3, i % 3, (i + 1) % 3, "A") for i in range(50)]
        feed(m, events)
        timeline = m.timeline(until=20.0)
        assert sum(w.messages for w in timeline) == m.total_sent


class TestTimeline:
    def test_timeline_window_starts(self) -> None:
        m = MetricsCollector(window=2.0)
        feed(m, [(0.5, 0, 1, "A"), (3.5, 1, 0, "A")])
        timeline = m.timeline(until=6.0)
        assert [w.start for w in timeline] == [0.0, 2.0, 4.0]
        assert timeline[0].senders == frozenset({0})
        assert timeline[1].senders == frozenset({1})
        assert timeline[2].senders == frozenset()

    def test_timeline_links_and_counts(self) -> None:
        m = MetricsCollector(window=1.0)
        feed(m, [(0.1, 0, 1, "A"), (0.2, 0, 1, "A")])
        window = m.timeline(until=1.0)[0]
        assert window.links == frozenset({(0, 1)})
        assert window.messages == 2
