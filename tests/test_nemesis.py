"""Tests for the nemesis fault subsystem: plans, events, envelopes."""

from __future__ import annotations

import random

import pytest

from conftest import Probe, Recorder

from repro.sim.cluster import Cluster
from repro.sim.nemesis import (
    CrashFault,
    DegradeFault,
    DuplicateFault,
    FaultPlan,
    FaultPlanError,
    FlapFault,
    ModelEnvelope,
    Nemesis,
    NetemFault,
    PartitionFault,
    PauseFault,
    model_violations,
    parse_event,
    sample_plan,
)


def build_cluster(n: int = 4, seed: int = 1) -> Cluster:
    return Cluster.build(n, lambda pid, sim, net: Recorder(pid, sim, net),
                         seed=seed)


# Every event kind, once — the acceptance criterion is that each
# round-trips exactly through its repro string.
ALL_EVENTS = (
    CrashFault(time=20.0, pid=3),
    PauseFault(time=12.5, pid=1, duration=4.25),
    PartitionFault(start=10.0, end=30.0, groups=((0, 1, 2), (3, 4))),
    DegradeFault(start=5.0, end=15.0, pairs=((0, 1), (1, 0)),
                 loss=0.35, delay=0.8),
    FlapFault(start=40.0, end=60.0, pairs=((2, 3),), period=2.5, up=0.4),
    DuplicateFault(start=7.0, end=90.0, pairs=((1, 2),), p=0.3, lag=0.1),
    NetemFault(start=3.0, end=9.5, pairs=((0, 1),), delay=0.05,
               jitter=0.04, dist="pareto", reorder=0.1, rate=250.0,
               loss=0.02),
)


class TestReproStrings:
    @pytest.mark.parametrize("event", ALL_EVENTS,
                             ids=[e.kind for e in ALL_EVENTS])
    def test_every_event_round_trips(self, event) -> None:  # noqa: ANN001
        assert parse_event(event.to_repro()) == event

    def test_plan_round_trips(self) -> None:
        plan = FaultPlan(ALL_EVENTS)
        assert FaultPlan.from_repro(plan.to_repro()) == plan

    def test_round_trip_preserves_exact_floats(self) -> None:
        event = CrashFault(time=1.1000000000000001, pid=0)
        assert parse_event(event.to_repro()).time == event.time

    def test_unknown_kind_rejected(self) -> None:
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            parse_event("meteor(t=1.0)")

    def test_malformed_event_rejected(self) -> None:
        with pytest.raises(FaultPlanError, match="malformed"):
            parse_event("crash 20.0 3")

    def test_empty_plan_round_trips(self) -> None:
        assert FaultPlan.from_repro("") == FaultPlan()
        assert FaultPlan().describe() == "(no faults)"


class TestPlanValidation:
    def test_events_sorted_by_start(self) -> None:
        plan = FaultPlan([CrashFault(5.0, 1), CrashFault(2.0, 0)])
        assert [e.time for e in plan.events] == [2.0, 5.0]

    def test_double_crash_rejected(self) -> None:
        with pytest.raises(FaultPlanError, match="already down"):
            FaultPlan([CrashFault(1.0, 0), CrashFault(2.0, 0)])

    def test_crashes_at_matches_crash_plan_shape(self) -> None:
        plan = FaultPlan.crashes_at((1.0, 2), (3.0, 0))
        assert plan.crashed_pids == {0, 2}
        assert len(plan) == 2

    def test_overlapping_partition_groups_rejected(self) -> None:
        with pytest.raises(FaultPlanError, match="disjoint"):
            PartitionFault(0.0, 10.0, ((0, 1), (1, 2)))

    def test_self_link_rejected(self) -> None:
        with pytest.raises(FaultPlanError, match="self-link"):
            DegradeFault(0.0, 10.0, ((1, 1),), loss=0.5)

    def test_pointless_degrade_rejected(self) -> None:
        with pytest.raises(FaultPlanError, match="loss or delay"):
            DegradeFault(0.0, 10.0, ((0, 1),))

    def test_schedule_rejects_unknown_pids(self) -> None:
        cluster = build_cluster(n=3)
        with pytest.raises(FaultPlanError,
                           match=r"references pid 9, but the target owns "
                                 r"pids 0\.\.2 \(n=3\)"):
            FaultPlan([PauseFault(1.0, 9, 2.0)]).schedule(cluster)

    def test_schedule_rejects_unknown_link_pids(self) -> None:
        cluster = build_cluster(n=3)
        plan = FaultPlan([DegradeFault(1.0, 5.0, ((0, 7),), loss=0.5)])
        with pytest.raises(FaultPlanError, match="references pid 7"):
            plan.schedule(cluster)

    def test_schedule_rejects_past_events(self) -> None:
        cluster = build_cluster()
        cluster.run_until(10.0)
        with pytest.raises(FaultPlanError, match="in the past"):
            FaultPlan.crashes_at((5.0, 1)).schedule(cluster)

    def test_last_disturbance(self) -> None:
        plan = FaultPlan([CrashFault(50.0, 1),
                          PartitionFault(10.0, 30.0, ((0,), (1,)))])
        assert plan.last_disturbance() == 50.0


class TestScheduling:
    def test_crashes_fire_at_times(self) -> None:
        cluster = build_cluster()
        FaultPlan.crashes_at((1.0, 2), (3.0, 0)).schedule(cluster)
        cluster.start_all()
        cluster.run_until(2.0)
        assert cluster.crashed_pids() == [2]
        cluster.run_until(4.0)
        assert cluster.crashed_pids() == [0, 2]

    def test_pause_freezes_and_resume_replays(self) -> None:
        cluster = build_cluster(n=2)
        FaultPlan([PauseFault(1.0, 1, duration=5.0)]).schedule(cluster)
        cluster.start_all()
        sender = cluster.process(0)
        cluster.run_until(2.0)
        assert cluster.process(1).paused
        sender.send(1, Probe(0, 7))
        cluster.run_until(3.0)
        assert cluster.process(1).received == [], \
            "paused target must not dispatch deliveries"
        cluster.run_until(7.0)
        assert not cluster.process(1).paused
        assert [m.payload for _, m in cluster.process(1).received] == [7], \
            "held deliveries replay at resume"

    def test_partition_applies_to_network(self) -> None:
        cluster = build_cluster(n=4)
        plan = FaultPlan([PartitionFault(1.0, 5.0, ((0, 1), (2, 3)))])
        plan.schedule(cluster)
        assert cluster.network.partitioned(0, 2, 2.0)
        assert not cluster.network.partitioned(0, 1, 2.0)
        assert not cluster.network.partitioned(0, 2, 5.0)

    def test_degrade_perturbs_exactly_the_named_links(self) -> None:
        cluster = build_cluster(n=3)
        plan = FaultPlan([DegradeFault(1.0, 5.0, ((0, 1),), loss=1.0)])
        plan.schedule(cluster)
        cluster.start_all()
        cluster.run_until(2.0)
        cluster.process(0).send(1, Probe(0, 1))  # degraded: dropped
        cluster.process(0).send(2, Probe(0, 2))  # untouched: delivered
        cluster.run_until(4.0)
        assert cluster.process(1).received == []
        assert [m.payload for _, m in cluster.process(2).received] == [2]

    def test_duplicate_delivers_extra_copies(self) -> None:
        cluster = build_cluster(n=2)
        plan = FaultPlan([DuplicateFault(1.0, 10.0, ((0, 1),), p=1.0,
                                         lag=0.1)])
        plan.schedule(cluster)
        cluster.start_all()
        cluster.run_until(2.0)
        cluster.process(0).send(1, Probe(0, 5))
        cluster.run_until(5.0)
        payloads = [m.payload for _, m in cluster.process(1).received]
        assert payloads == [5, 5], "p=1.0 duplication doubles delivery"

    def test_scheduling_on_consensus_system_touches_both_networks(self) -> None:
        from repro.consensus import ConsensusSystem
        from repro.sim.topology import LinkTimings, multi_source_links

        timings = LinkTimings(gst=2.0)
        system = ConsensusSystem.build_single_decree(
            3, lambda: multi_source_links(3, (0,), timings),
            proposals=["a", "b", "c"], seed=5)
        plan = FaultPlan([PartitionFault(1.0, 4.0, ((0, 1), (2,)))])
        plan.schedule(system)
        for network in system.networks:
            assert network.partitioned(0, 2, 2.0)


class TestNetem:
    """The netem-style shape: validation, sim approximation, model rules."""

    def test_repro_string_spells_every_field(self) -> None:
        event = NetemFault(1.0, 6.0, ((0, 1),), delay=0.05, jitter=0.04,
                           dist="pareto", reorder=0.1, rate=250.0,
                           loss=0.02)
        text = event.to_repro()
        for token in ("delay=0.05", "jitter=0.04", "dist=pareto",
                      "reorder=0.1", "rate=250.0", "loss=0.02",
                      "pairs=0>1"):
            assert token in text
        assert parse_event(text) == event

    def test_asymmetric_pair_round_trips_in_one_plan(self) -> None:
        plan = FaultPlan([
            NetemFault(1.0, 6.0, ((0, 1),), delay=0.05, jitter=0.04,
                       dist="pareto", reorder=0.1),
            NetemFault(1.0, 6.0, ((1, 0),), delay=0.01, rate=300.0,
                       loss=0.05),
        ])
        text = plan.to_repro()
        assert FaultPlan.from_repro(text).to_repro() == text

    def test_all_zero_shape_rejected(self) -> None:
        with pytest.raises(FaultPlanError):
            NetemFault(1.0, 6.0, ((0, 1),))

    @pytest.mark.parametrize("kwargs", [
        {"delay": -0.1}, {"jitter": -0.1}, {"rate": -1.0},
        {"reorder": 1.5}, {"loss": 1.5},
        {"delay": 0.1, "dist": "normal"},
    ], ids=["neg-delay", "neg-jitter", "neg-rate", "reorder-range",
            "loss-range", "bad-dist"])
    def test_bad_fields_rejected(self, kwargs) -> None:
        with pytest.raises(FaultPlanError):
            NetemFault(1.0, 6.0, ((0, 1),), **kwargs)

    def test_sim_approximation_degrades_the_named_link(self) -> None:
        # On the simulator the shape collapses to loss + extra_delay =
        # delay + jitter; a loss=1.0 netem window therefore blackholes
        # exactly its pairs, like a DegradeFault would.
        cluster = build_cluster(n=3)
        plan = FaultPlan([NetemFault(1.0, 5.0, ((0, 1),), loss=1.0)])
        plan.schedule(cluster)
        cluster.start_all()
        cluster.run_until(2.0)
        cluster.process(0).send(1, Probe(0, 1))  # shaped: dropped
        cluster.process(0).send(2, Probe(0, 2))  # untouched: delivered
        cluster.run_until(4.0)
        assert cluster.process(1).received == []
        assert [m.payload for _, m in cluster.process(2).received] == [2]

    def test_model_envelope_applies_heal_by_rule(self) -> None:
        envelope = ModelEnvelope(n=3, source=0, f=1, horizon=400.0)
        healed = FaultPlan([NetemFault(10.0, 100.0, ((0, 1),),
                                       delay=0.2, jitter=0.1)])
        assert model_violations(healed, envelope) == []
        persistent = FaultPlan([NetemFault(10.0, 390.0, ((0, 1),),
                                           delay=0.2)])
        assert any("persists" in issue
                   for issue in model_violations(persistent, envelope))


class TestModelEnvelope:
    def test_heal_by(self) -> None:
        envelope = ModelEnvelope(n=5, source=0, f=2, horizon=400.0,
                                 heal_margin=0.5)
        assert envelope.heal_by == 200.0

    def test_bad_source_rejected(self) -> None:
        with pytest.raises(ValueError):
            ModelEnvelope(n=3, source=3, f=1)

    def test_source_crash_is_a_violation(self) -> None:
        envelope = ModelEnvelope(n=5, source=2, f=2)
        plan = FaultPlan.crashes_at((10.0, 2))
        assert any("source" in issue
                   for issue in model_violations(plan, envelope))

    def test_too_many_crashes_is_a_violation(self) -> None:
        envelope = ModelEnvelope(n=5, source=0, f=1)
        plan = FaultPlan.crashes_at((10.0, 1), (20.0, 2))
        assert any("fault bound" in issue
                   for issue in model_violations(plan, envelope))

    def test_persistent_disturbance_is_a_violation(self) -> None:
        envelope = ModelEnvelope(n=5, source=0, f=2, horizon=400.0)
        plan = FaultPlan([PartitionFault(10.0, 390.0, ((0, 1, 2), (3, 4)))])
        assert any("persists" in issue
                   for issue in model_violations(plan, envelope))

    def test_duplication_is_always_legal(self) -> None:
        envelope = ModelEnvelope(n=5, source=0, f=2, horizon=400.0)
        plan = FaultPlan([DuplicateFault(10.0, 399.0, ((0, 1),), p=1.0)])
        assert model_violations(plan, envelope) == []

    def test_healed_disturbances_are_legal(self) -> None:
        envelope = ModelEnvelope(n=5, source=0, f=2, horizon=400.0)
        plan = FaultPlan([
            CrashFault(30.0, 3),
            PauseFault(20.0, 0, 10.0),
            PartitionFault(50.0, 80.0, ((0, 1, 2), (3, 4))),
            DegradeFault(90.0, 120.0, ((0, 1),), loss=0.9),
        ])
        assert model_violations(plan, envelope) == []


class TestNemesisSampling:
    def test_sampled_plans_are_in_model(self) -> None:
        rng = random.Random(0)
        for index in range(300):
            n = rng.randint(2, 8)
            envelope = ModelEnvelope(n=n, source=rng.randrange(n),
                                     f=(n - 1) // 2,
                                     horizon=rng.choice([200.0, 400.0]))
            plan = sample_plan(rng, envelope)
            assert model_violations(plan, envelope) == [], plan.describe()

    def test_sampled_plans_round_trip(self) -> None:
        rng = random.Random(1)
        envelope = ModelEnvelope(n=5, source=1, f=2)
        for _ in range(100):
            plan = sample_plan(rng, envelope)
            assert FaultPlan.from_repro(plan.to_repro()) == plan

    def test_nemesis_is_replayable_from_seed_and_index(self) -> None:
        envelope = ModelEnvelope(n=5, source=0, f=2)
        first = Nemesis(envelope, seed=42)
        second = Nemesis(envelope, seed=42)
        assert first.campaigns(10) == second.campaigns(10)
        # Index addressing is random access, not a stream position.
        assert first.plan(7) == second.campaigns(10)[7]

    def test_different_seeds_differ(self) -> None:
        envelope = ModelEnvelope(n=6, source=0, f=2)
        plans_a = Nemesis(envelope, seed=1).campaigns(5)
        plans_b = Nemesis(envelope, seed=2).campaigns(5)
        assert plans_a != plans_b

    def test_sampled_plans_schedule_cleanly(self) -> None:
        envelope = ModelEnvelope(n=4, source=0, f=1)
        for index in range(20):
            plan = Nemesis(envelope, seed=9).plan(index)
            cluster = build_cluster(n=4, seed=index)
            plan.schedule(cluster)
            cluster.start_all()
            cluster.run_until(30.0)
