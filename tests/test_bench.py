"""Tests for the parallel bench runner: determinism, schema, CLI wiring."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.harness import bench


QUICK_E1 = bench.default_suite(seed=7, experiments=("e1",), quick=True)


class TestSuiteConstruction:
    def test_case_ids_are_unique_and_canonical(self) -> None:
        cases = bench.default_suite(seed=7)
        ids = [case.case_id for case in cases]
        assert len(ids) == len(set(ids))
        # Same seed, same suite: the canonical order is reproducible.
        assert ids == [c.case_id for c in bench.default_suite(seed=7)]

    def test_experiment_subset(self) -> None:
        cases = bench.default_suite(seed=7, experiments=("e2", "e4"))
        assert {case.experiment for case in cases} == {"e2", "e4"}

    def test_unknown_experiment_rejected(self) -> None:
        with pytest.raises(ValueError, match="unknown experiments"):
            bench.default_suite(seed=7, experiments=("e1", "e9"))

    def test_full_adds_the_large_n_rows(self) -> None:
        base = {c.case_id for c in bench.default_suite(seed=7)}
        full = {c.case_id for c in bench.default_suite(seed=7, full=True)}
        assert full - base == {"e3/comm-efficient/n=128",
                               "e18/comm-efficient/n=512",
                               "e18/comm-efficient/n=1024"}

    def test_default_suite_has_the_e18_census(self) -> None:
        base = {c.case_id for c in bench.default_suite(seed=7)}
        assert "e18/comm-efficient/n=256" in base
        quick = {c.case_id for c in bench.default_suite(seed=7, quick=True)}
        assert not any(c.startswith("e18/") for c in quick)

    def test_seed_travels_with_each_case(self) -> None:
        for case in bench.default_suite(seed=13):
            assert case.params["seed"] in (13, 14)


class TestDeterminismAcrossJobs:
    def test_jobs_1_and_jobs_4_are_byte_identical_modulo_wall_time(
            self, tmp_path) -> None:
        """The ISSUE's headline regression: `repro bench --seed 7 --jobs 1`
        and `--jobs 4` must emit byte-identical JSON once the wall-time
        fields (per-case `timing`, top-level `meta`) are stripped."""
        out1 = tmp_path / "jobs1.json"
        out4 = tmp_path / "jobs4.json"
        argv_base = ["bench", "--seed", "7", "--quick",
                     "--experiments", "e1,e4"]
        assert main([*argv_base, "--jobs", "1", "--out", str(out1)]) == 0
        assert main([*argv_base, "--jobs", "4", "--out", str(out4)]) == 0
        report1 = json.loads(out1.read_text())
        report4 = json.loads(out4.read_text())
        core1 = bench.report_to_json(bench.strip_nondeterministic(report1))
        core4 = bench.report_to_json(bench.strip_nondeterministic(report4))
        assert core1 == core4
        # ...and the stripped projections really dropped the wall fields.
        assert "meta" not in json.loads(core1)
        assert all("timing" not in case
                   for case in json.loads(core1)["cases"])

    def test_run_suite_merges_in_canonical_order(self) -> None:
        results = bench.run_suite(QUICK_E1, jobs=2)
        assert [r["case_id"] for r in results] == \
            [c.case_id for c in QUICK_E1]


class TestReportSchema:
    @pytest.fixture(scope="class")
    def report(self) -> dict:
        results = bench.run_suite(QUICK_E1[:2], jobs=1)
        return bench.build_report(results, seed=7, jobs=1, suite="quick",
                                  wall_s=0.5)

    def test_schema_version(self, report: dict) -> None:
        assert report["schema"] == bench.SCHEMA_VERSION == "repro-bench/v1"

    def test_top_level_fields(self, report: dict) -> None:
        assert set(report) == {"schema", "suite", "seed", "cases",
                               "summary", "meta"}
        assert set(report["summary"]) == {"cases", "ok", "failed",
                                          "events", "sim_time_s"}
        for key in ("created_utc", "jobs", "wall_s", "host", "platform",
                    "python", "cpu_count"):
            assert key in report["meta"]

    def test_case_fields_and_types(self, report: dict) -> None:
        for case in report["cases"]:
            assert set(case) == {"case_id", "experiment", "params", "ok",
                                 "verdict", "result", "events", "sim_time_s",
                                 "profile", "timing"}
            assert isinstance(case["case_id"], str)
            assert case["experiment"] in bench.EXPERIMENTS
            assert isinstance(case["ok"], bool)
            assert isinstance(case["events"], int) and case["events"] > 0
            assert isinstance(case["sim_time_s"], float)
            assert set(case["timing"]) == {"wall_s", "events_per_s",
                                           "sim_s_per_wall_s"}

    def test_verdict_block(self, report: dict) -> None:
        """Each case carries the shared Verdict shape, consistent with ok."""
        for case in report["cases"]:
            verdict = case["verdict"]
            assert set(verdict) == {"ok", "violations", "evidence"}
            assert verdict["ok"] == case["ok"]
            assert isinstance(verdict["violations"], list)
            if not verdict["ok"]:
                assert verdict["violations"]

    def test_profile_block(self, report: dict) -> None:
        """Kernel counters are integers and internally consistent."""
        for case in report["cases"]:
            profile = case["profile"]
            assert set(profile) == {"events_executed", "heap_pushes",
                                    "heap_pops", "tombstone_pops",
                                    "compactions", "pending"}
            assert all(isinstance(value, int) and value >= 0
                       for value in profile.values())
            assert profile["events_executed"] == case["events"]
            assert profile["heap_pops"] == (profile["events_executed"]
                                            + profile["tombstone_pops"])
            assert profile["heap_pushes"] >= profile["events_executed"]

    def test_report_is_valid_sorted_json(self, report: dict) -> None:
        text = bench.report_to_json(report)
        assert json.loads(text) == report
        assert text == bench.report_to_json(json.loads(text))

    def test_summary_consistent_with_cases(self, report: dict) -> None:
        summary = report["summary"]
        assert summary["cases"] == len(report["cases"])
        assert summary["ok"] + summary["failed"] == summary["cases"]
        assert summary["events"] == sum(c["events"] for c in report["cases"])


class TestCompareReports:
    @pytest.fixture(scope="class")
    def report(self) -> dict:
        results = bench.run_suite(QUICK_E1[:2], jobs=1)
        return bench.build_report(results, seed=7, jobs=1, suite="quick",
                                  wall_s=0.5)

    def test_identical_reports_show_no_drift(self, report: dict) -> None:
        diff = bench.compare_reports(report, report)
        assert diff["ok"]
        assert diff["changed"] == []
        assert diff["added"] == diff["removed"] == []
        assert len(diff["throughput"]) == len(report["cases"])
        assert all(row["ratio"] == pytest.approx(1.0)
                   for row in diff["throughput"])

    def test_deterministic_drift_is_flagged(self, report: dict) -> None:
        import copy
        new = copy.deepcopy(report)
        new["cases"][0]["events"] += 1
        diff = bench.compare_reports(report, new)
        assert not diff["ok"]
        assert diff["changed"] == [new["cases"][0]["case_id"]]

    def test_suite_shape_changes_are_not_drift(self, report: dict) -> None:
        import copy
        new = copy.deepcopy(report)
        dropped = new["cases"].pop()
        diff = bench.compare_reports(report, new)
        assert diff["ok"]
        assert diff["removed"] == [dropped["case_id"]]
        reverse = bench.compare_reports(new, report)
        assert reverse["added"] == [dropped["case_id"]]


class TestE19LoadRows:
    @pytest.fixture(scope="class")
    def results(self) -> list[dict]:
        cases = bench.default_suite(seed=7, experiments=("e19",), quick=True)
        return bench.run_suite(cases, jobs=1)

    def test_quick_suite_shape(self) -> None:
        ids = {c.case_id for c in
               bench.default_suite(seed=7, experiments=("e19",), quick=True)}
        assert ids == {"e19/batching/n=5", "e19/sharded/groups=4/n=5"}
        default_ids = {c.case_id for c in
                       bench.default_suite(seed=7, experiments=("e19",))}
        assert {"e19/open/n=5", "e19/closed/n=5", "e19/batching/n=5",
                "e19/sharded/groups=4/n=5",
                "e19/compaction/n=5"} == default_ids

    def test_rows_pass_and_carry_percentiles(self,
                                             results: list[dict]) -> None:
        for row in results:
            assert row["ok"], row["verdict"]
            latency = row["result"]["latency_s"]
            assert latency["p50"] <= latency["p95"] <= latency["p99"]
            assert row["result"]["throughput_cps"] > 0

    def test_batching_row_beats_its_control(self,
                                            results: list[dict]) -> None:
        batching = next(r for r in results
                        if r["case_id"] == "e19/batching/n=5")
        details = batching["result"]
        assert details["speedup"] > 1.0
        assert details["batched"]["throughput_cps"] \
            > details["control"]["throughput_cps"]

    def test_latency_drift_rows_in_compare(self, results: list[dict]) -> None:
        report = bench.build_report(results, seed=7, jobs=1, suite="load",
                                    wall_s=0.1)
        diff = bench.compare_reports(report, report)
        assert diff["ok"]
        assert diff["latency"]
        by_case = {(row["case_id"], row["quantile"]) for row in
                   diff["latency"]}
        assert ("e19/batching/n=5", "p50") in by_case
        assert all(row["ratio"] == pytest.approx(1.0)
                   for row in diff["latency"])


class TestCliFilterAndCompare:
    ARGV = ["bench", "--quick", "--jobs", "1",
            "--experiments", "e1", "--seed", "7"]

    def test_filter_narrows_the_suite(self, tmp_path) -> None:
        out = tmp_path / "filtered.json"
        code = main(["bench", "--quick", "--jobs", "1",
                     "--filter", "e1/*", "--out", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["cases"]
        assert all(case["case_id"].startswith("e1/")
                   for case in report["cases"])

    def test_filter_with_no_match_is_an_error(self) -> None:
        with pytest.raises(SystemExit, match="matches no case"):
            main(["bench", "--quick", "--no-out", "--filter", "zzz/*"])

    def test_compare_identical_run_exits_zero(self, tmp_path,
                                              capsys) -> None:
        out = tmp_path / "old.json"
        assert main([*self.ARGV, "--out", str(out)]) == 0
        code = main([*self.ARGV, "--no-out", "--compare", str(out)])
        assert code == 0
        assert "deterministic results identical" in capsys.readouterr().out

    def test_compare_flags_deterministic_drift(self, tmp_path,
                                               capsys) -> None:
        out = tmp_path / "old.json"
        assert main([*self.ARGV, "--out", str(out)]) == 0
        old = json.loads(out.read_text())
        old["cases"][0]["events"] += 1
        out.write_text(json.dumps(old))
        code = main([*self.ARGV, "--no-out", "--compare", str(out)])
        assert code == 1
        assert "CHANGED" in capsys.readouterr().out

    def test_compare_unreadable_file_is_an_error(self, tmp_path) -> None:
        with pytest.raises(SystemExit, match="cannot read"):
            main([*self.ARGV, "--no-out",
                  "--compare", str(tmp_path / "missing.json")])


class TestCli:
    def test_no_out_writes_nothing(self, tmp_path, monkeypatch,
                                   capsys) -> None:
        monkeypatch.chdir(tmp_path)
        code = main(["bench", "--quick", "--experiments", "e2",
                     "--jobs", "1", "--no-out"])
        assert code == 0
        assert list(tmp_path.iterdir()) == []
        assert "cases ok" in capsys.readouterr().out

    def test_default_output_name_is_dated(self) -> None:
        import datetime
        name = bench.default_output_name(datetime.date(2026, 8, 6))
        assert name == "BENCH_2026-08-06.json"
