"""Property-based tests: Omega holds across random seeds and crash subsets."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import analyze_omega_run
from repro.harness import OmegaScenario
from repro.sim import LinkTimings


FAST = LinkTimings(gst=3.0, pre_gst_delay_max=2.0)


class TestOmegaAcrossSeeds:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=12, deadline=None)
    def test_comm_efficient_converges_and_is_efficient(self, seed: int) -> None:
        scenario = OmegaScenario(
            algorithm="comm-efficient", n=4, system="source", source=1,
            seed=seed, horizon=120.0, timings=FAST)
        outcome = scenario.run()
        stab = outcome.report.stabilization_time
        if stab is not None and stab > scenario.horizon - 2 * scenario.ce_window:
            # Communication efficiency is an *eventual* property: a run
            # that stabilizes this close to the horizon (seed 87 does, at
            # t=103.85) still has pre-stabilization traffic inside the
            # trailing census window.  Give it a longer quiet tail.
            outcome = OmegaScenario(
                algorithm="comm-efficient", n=4, system="source", source=1,
                seed=seed, horizon=360.0, timings=FAST).run()
        assert outcome.stabilized
        assert outcome.communication_efficient

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_source_omega_converges(self, seed: int) -> None:
        outcome = OmegaScenario(
            algorithm="source", n=4, system="source", source=1,
            seed=seed, horizon=120.0, timings=FAST).run()
        assert outcome.stabilized


class TestOmegaUnderRandomCrashes:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           victims=st.sets(st.sampled_from([0, 2, 3, 4]), max_size=2),
           crash_time=st.floats(min_value=1.0, max_value=30.0))
    @settings(max_examples=12, deadline=None)
    def test_all_timely_with_minority_crashes(
            self, seed: int, victims: set[int], crash_time: float) -> None:
        crashes = tuple((crash_time + i, pid)
                        for i, pid in enumerate(sorted(victims)))
        outcome = OmegaScenario(
            algorithm="all-timely", n=5, system="all-et",
            crashes=crashes, seed=seed, horizon=150.0, timings=FAST).run()
        assert outcome.stabilized
        expected = min(pid for pid in range(5) if pid not in victims)
        assert outcome.report.final_leader == expected

    @given(seed=st.integers(min_value=0, max_value=10_000),
           victim=st.sampled_from([0, 2, 3]),
           crash_time=st.floats(min_value=1.0, max_value=40.0))
    @settings(max_examples=10, deadline=None)
    def test_comm_efficient_with_nonsource_crash(
            self, seed: int, victim: int, crash_time: float) -> None:
        outcome = OmegaScenario(
            algorithm="comm-efficient", n=4, system="source", source=1,
            crashes=((crash_time, victim),), seed=seed, horizon=200.0,
            timings=FAST).run()
        assert outcome.stabilized
        assert outcome.report.final_leader != victim


class TestHistoryInvariants:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_histories_are_time_monotone_and_deduplicated(
            self, seed: int) -> None:
        outcome = OmegaScenario(
            algorithm="comm-efficient", n=4, system="source", source=0,
            seed=seed, horizon=80.0, timings=FAST).run()
        for pid in outcome.cluster.pids:
            history = outcome.cluster.process(pid).history
            times = [time for time, _ in history]
            assert times == sorted(times)
            for (_, a), (_, b) in zip(history, history[1:]):
                assert a != b, "consecutive duplicate outputs recorded"
            final = history[-1][1]
            assert outcome.cluster.process(pid).leader() == final
