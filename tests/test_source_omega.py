"""Behavioural tests for the eventually-timely-source Omega (R1)."""

from __future__ import annotations

from repro.core import Accusation, Alive, analyze_omega_run, make_factory
from repro.core.config import OmegaConfig
from repro.core.source_omega import SourceOmega
from repro.sim import Cluster, CrashPlan, LinkTimings
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.sim.topology import source_links


def build(n: int = 5, source: int = 2, seed: int = 1, gst: float = 4.0,
          config: OmegaConfig | None = None) -> Cluster:
    return Cluster.build(
        n, make_factory("source", config or OmegaConfig()),
        links=source_links(n, source, LinkTimings(gst=gst)), seed=seed)


class TestConvergence:
    def test_converges_on_a_correct_process(self) -> None:
        cluster = build()
        cluster.start_all()
        cluster.run_until(120.0)
        report = analyze_omega_run(cluster)
        assert report.omega_holds

    def test_source_keeps_bounded_counter(self) -> None:
        cluster = build(source=2)
        cluster.start_all()
        cluster.run_until(60.0)
        counter_mid = cluster.process(2).counter
        cluster.run_until(160.0)
        counter_end = cluster.process(2).counter
        assert counter_end == counter_mid, \
            "the source's accusation counter must stabilize"

    def test_converges_across_seeds(self) -> None:
        for seed in range(5):
            cluster = build(seed=seed)
            cluster.start_all()
            cluster.run_until(150.0)
            assert analyze_omega_run(cluster).omega_holds, f"seed {seed}"

    def test_crash_of_nonsource_is_tolerated(self) -> None:
        cluster = build(n=5, source=2)
        CrashPlan.crash_at((15.0, 0), (25.0, 4)).schedule(cluster)
        cluster.start_all()
        cluster.run_until(150.0)
        report = analyze_omega_run(cluster)
        assert report.omega_holds
        assert report.final_leader in {1, 2, 3}

    def test_crashed_leader_abandoned(self) -> None:
        cluster = build(n=5, source=2)
        cluster.start_all()
        cluster.run_until(60.0)
        leader = analyze_omega_run(cluster).final_leader
        cluster.crash(leader)
        cluster.run_until(220.0)
        report = analyze_omega_run(cluster)
        assert report.omega_holds
        assert report.final_leader != leader


class TestAccusationMechanics:
    def build_direct(self) -> tuple[Simulation, Network, SourceOmega]:
        sim = Simulation(seed=0)
        network = Network(sim)
        proto = SourceOmega(0, sim, network, OmegaConfig())
        SourceOmega(1, sim, network, OmegaConfig())
        proto.start()
        return sim, network, proto

    def test_matching_phase_increments_counter(self) -> None:
        _, _, proto = self.build_direct()
        assert proto.counter == 0
        proto.deliver(Accusation(1, target=0, phase=0))
        assert proto.counter == 1
        assert proto.phase == 1

    def test_stale_phase_ignored(self) -> None:
        _, _, proto = self.build_direct()
        proto.deliver(Accusation(1, target=0, phase=0))
        proto.deliver(Accusation(1, target=0, phase=0))  # now stale
        assert proto.counter == 1
        assert proto.stale_accusations == 1

    def test_phase_tagging_can_be_disabled(self) -> None:
        sim = Simulation(seed=0)
        network = Network(sim)
        config = OmegaConfig(phase_tagged_accusations=False)
        proto = SourceOmega(0, sim, network, config)
        SourceOmega(1, sim, network, config)
        proto.start()
        proto.deliver(Accusation(1, target=0, phase=0))
        proto.deliver(Accusation(1, target=0, phase=0))
        assert proto.counter == 2, "without tagging every accusation counts"

    def test_adoption_prefers_smaller_counter_then_id(self) -> None:
        _, _, proto = self.build_direct()
        proto.deliver(Alive(1, counter=0, phase=0))
        # Tie on counter: smaller id (0 = self) wins, so no adoption.
        assert proto.leader() == 0
        proto.counter = 3  # our priority worsens
        proto.deliver(Alive(1, counter=1, phase=0))
        assert proto.leader() == 1

    def test_alive_from_leader_refreshes_watch(self) -> None:
        sim, _, proto = self.build_direct()
        proto.counter = 5
        proto.deliver(Alive(1, counter=0, phase=0))
        assert proto.leader() == 1
        assert proto.has_timer("watch")

    def test_watch_expiry_accuses_and_self_promotes(self) -> None:
        # Peer 1 stays silent (never started), so after one Alive the
        # watch must expire, we must self-promote, and an accusation with
        # the last-seen phase must go out.
        sim, network, proto = self.build_direct()
        proto.counter = 5
        proto.deliver(Alive(1, counter=0, phase=7))
        assert proto.leader() == 1
        sim.run_until(proto.timeouts.get(1) + 10.0)
        assert proto.leader() == 0
        assert network.metrics.sent_by_kind["Accusation"] >= 1

    def test_timeout_grows_on_expiry(self) -> None:
        sim, _, proto = self.build_direct()
        proto.counter = 5
        before = proto.timeouts.get(1)
        proto.deliver(Alive(1, counter=0, phase=0))
        sim.run_until(before + 5.0)
        assert proto.timeouts.get(1) > before


class TestCost:
    def test_everyone_keeps_sending_forever(self) -> None:
        cluster = build()
        cluster.start_all()
        cluster.run_until(120.0)
        senders = cluster.metrics.senders_between(100.0, 120.0)
        assert senders == set(range(5)), "R1 algorithm is not CE by design"
