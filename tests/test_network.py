"""Unit tests for the network fabric."""

from __future__ import annotations

import pytest

from conftest import Probe, Recorder, make_pair

from repro.sim.engine import Simulation
from repro.sim.links import DeadLink, TimelyLink
from repro.sim.network import Network, NetworkError
from repro.sim.trace import DeliverRecord, DropRecord, SendRecord


class TestRegistration:
    def test_duplicate_pid_rejected(self, sim: Simulation, network: Network) -> None:
        Recorder(0, sim, network)
        with pytest.raises(NetworkError):
            Recorder(0, sim, network)

    def test_unknown_pid_rejected(self, sim: Simulation, network: Network) -> None:
        with pytest.raises(NetworkError):
            network.process(42)

    def test_pids_sorted(self, sim: Simulation, network: Network) -> None:
        Recorder(2, sim, network)
        Recorder(0, sim, network)
        Recorder(1, sim, network)
        assert network.pids == [0, 1, 2]


class TestLinks:
    def test_default_link_created_lazily(self, sim: Simulation,
                                         network: Network) -> None:
        make_pair(sim, network)
        policy = network.link(0, 1)
        assert isinstance(policy, TimelyLink)
        assert network.link(0, 1) is policy

    def test_explicit_link_used(self, sim: Simulation, network: Network) -> None:
        a, b = make_pair(sim, network)
        network.set_link(0, 1, DeadLink())
        a.send(1, Probe(0))
        sim.run_until(1.0)
        assert b.received == []

    def test_direction_matters(self, sim: Simulation, network: Network) -> None:
        a, b = make_pair(sim, network)
        network.set_link(0, 1, DeadLink())
        b.send(0, Probe(1))  # reverse direction uses default timely link
        sim.run_until(1.0)
        assert len(a.received) == 1

    def test_self_link_rejected(self, sim: Simulation, network: Network) -> None:
        with pytest.raises(NetworkError):
            network.set_link(0, 0, DeadLink())


class TestSendErrors:
    def test_send_to_self_rejected(self, sim: Simulation, network: Network) -> None:
        make_pair(sim, network)
        with pytest.raises(NetworkError):
            network.send(0, 0, Probe(0))

    def test_send_to_unknown_rejected(self, sim: Simulation,
                                      network: Network) -> None:
        make_pair(sim, network)
        with pytest.raises(NetworkError):
            network.send(0, 9, Probe(0))

    def test_crashed_sender_raises_at_network_level(self, sim: Simulation,
                                                    network: Network) -> None:
        a, _ = make_pair(sim, network)
        a.crash()
        # Process.send guards silently, but pushing through the network
        # directly is a protocol bug and must be loud.
        with pytest.raises(NetworkError):
            network.send(0, 1, Probe(0))


class TestTraceAndMetrics:
    def test_send_and_delivery_traced(self, sim: Simulation,
                                      network: Network) -> None:
        a, _ = make_pair(sim, network)
        a.send(1, Probe(0))
        sim.run_until(1.0)
        sends = network.trace.select(SendRecord)
        delivers = network.trace.select(DeliverRecord)
        assert len(sends) == 1 and len(delivers) == 1
        assert delivers[0].delay > 0
        assert delivers[0].kind == "Probe"

    def test_link_drop_traced_with_reason(self, sim: Simulation,
                                          network: Network) -> None:
        a, _ = make_pair(sim, network)
        network.set_link(0, 1, DeadLink())
        a.send(1, Probe(0))
        sim.run_until(1.0)
        drops = network.trace.select(DropRecord)
        assert [d.reason for d in drops] == ["link"]

    def test_metrics_fed_on_send_and_delivery(self, sim: Simulation,
                                              network: Network) -> None:
        a, _ = make_pair(sim, network)
        a.send(1, Probe(0))
        sim.run_until(1.0)
        assert network.metrics.sent_by_sender[0] == 1
        assert network.metrics.delivered_by_kind["Probe"] == 1

    def test_messages_not_altered(self, sim: Simulation, network: Network) -> None:
        a, b = make_pair(sim, network)
        message = Probe(0, payload=123)
        a.send(1, message)
        sim.run_until(1.0)
        assert b.received[0][1] is message
