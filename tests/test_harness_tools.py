"""Unit tests for harness statistics and table rendering."""

from __future__ import annotations

import pytest

from repro.harness.stats import Summary, percentile, summarize
from repro.harness.tables import format_value, render_table


class TestPercentile:
    def test_median_of_odd_sample(self) -> None:
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_interpolation(self) -> None:
        assert percentile([0.0, 10.0], 0.25) == 2.5

    def test_extremes(self) -> None:
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 1.0) == 9.0

    def test_single_value(self) -> None:
        assert percentile([7.0], 0.9) == 7.0

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestSummarize:
    def test_summary_fields(self) -> None:
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.median == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    def test_empty_rejected(self) -> None:
        with pytest.raises(ValueError):
            summarize([])

    def test_str_rendering(self) -> None:
        text = str(summarize([1.0, 2.0]))
        assert "mean=1.500" in text


class TestFormatValue:
    def test_float_precision(self) -> None:
        assert format_value(1.23456) == "1.235"

    def test_bool_words(self) -> None:
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_none_dash(self) -> None:
        assert format_value(None) == "-"

    def test_nan_dash(self) -> None:
        assert format_value(float("nan")) == "-"

    def test_strings_pass_through(self) -> None:
        assert format_value("abc") == "abc"


class TestRenderTable:
    def test_structure(self) -> None:
        table = render_table(["name", "value"], [["a", 1], ["bb", 2.5]],
                             title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("+")
        assert "name" in lines[2]
        assert table.count("+--") >= 3

    def test_numbers_right_aligned(self) -> None:
        table = render_table(["v"], [["1"], ["22222"]])
        rows = [line for line in table.splitlines() if line.startswith("|")]
        assert rows[-2].endswith("    1 |")

    def test_row_width_mismatch(self) -> None:
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])
