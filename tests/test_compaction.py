"""Tests for log compaction and snapshot transfer."""

from __future__ import annotations

import pytest

from repro.consensus import (
    CompactingReplica,
    ConsensusSystem,
    JournalMachine,
    KeyValueStore,
    WorkloadSpec,
    SnapshotAck,
    SnapshotOffer,
    check_compacting_log,
)
from repro.consensus.messages import Ballot, Prepare
from repro.sim import CrashPlan, LinkTimings
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.sim.topology import multi_source_links

TIMINGS = LinkTimings(gst=3.0)


def build_system(n: int = 5, keep_tail: int = 8, seed: int = 9,
                 machine=JournalMachine) -> ConsensusSystem:  # noqa: ANN001
    return ConsensusSystem.build_compacting_log(
        n, lambda: multi_source_links(n, (1, 2), TIMINGS),
        machine_factory=machine, keep_tail=keep_tail, seed=seed)


def build_pair() -> tuple[Simulation, list[CompactingReplica]]:
    sim = Simulation()
    network = Network(sim)
    replicas = [CompactingReplica(pid, sim, network, 3,
                                  leader_of=lambda: 99,
                                  machine_factory=JournalMachine,
                                  keep_tail=4)
                for pid in range(3)]
    for replica in replicas:
        replica.start()
    return sim, replicas


class TestValidation:
    def test_keep_tail_positive(self) -> None:
        sim = Simulation()
        network = Network(sim)
        with pytest.raises(ValueError):
            CompactingReplica(0, sim, network, 3, leader_of=lambda: 0,
                              machine_factory=JournalMachine, keep_tail=0)

    def test_snapshot_retry_positive(self) -> None:
        sim = Simulation()
        network = Network(sim)
        with pytest.raises(ValueError):
            CompactingReplica(0, sim, network, 3, leader_of=lambda: 0,
                              machine_factory=JournalMachine,
                              snapshot_retry=0.0)


class TestApplicationOnCommit:
    def test_machine_follows_commits(self) -> None:
        _, replicas = build_pair()
        replica = replicas[0]
        from repro.consensus.messages import Decide

        replica.deliver(Decide(1, 0, (0, "a")))
        replica.deliver(Decide(1, 1, (1, "b")))
        assert replica.machine_snapshot() == ("a", "b")

    def test_duplicate_ids_applied_once(self) -> None:
        _, replicas = build_pair()
        replica = replicas[0]
        from repro.consensus.messages import Decide

        replica.deliver(Decide(1, 0, (7, "x")))
        replica.deliver(Decide(1, 1, (7, "x")))
        assert replica.machine_snapshot() == ("x",)


class TestCompaction:
    def test_log_is_bounded(self) -> None:
        system = build_system(keep_tail=8)
        WorkloadSpec(count=60, period=0.3, start=4.0).build(system)
        system.start_all()
        system.run_until(200.0)
        for pid in system.up_pids():
            replica = system.node(pid).agreement
            assert replica.log_size() <= 8 + replica.config.max_batch, \
                f"replica {pid} holds {replica.log_size()} entries"

    def test_floor_advances_with_commits(self) -> None:
        system = build_system(keep_tail=8)
        workload = WorkloadSpec(count=40, period=0.3, start=4.0).build(system)
        system.start_all()
        system.run_until(200.0)
        report = check_compacting_log(system, workload.submitted)
        assert report.agreement and report.validity
        for pid in system.up_pids():
            replica = system.node(pid).agreement
            assert replica.compact_floor == replica.commit_index - 8 + 1

    def test_all_replicas_converge(self) -> None:
        system = build_system()
        workload = WorkloadSpec(count=50, period=0.3, start=4.0).build(system)
        system.start_all()
        system.run_until(250.0)
        assert workload.done()
        journals = {system.node(pid).agreement.machine_snapshot()
                    for pid in system.up_pids()}
        assert len(journals) == 1
        assert len(journals.pop()) == 50


class TestSnapshotTransfer:
    def test_partitioned_laggard_catches_up_via_snapshot(self) -> None:
        system = build_system(keep_tail=8, seed=9)
        workload = WorkloadSpec(count=80, period=0.4, start=4.0).build(system)
        for network in (system.agreement_network, system.fd_network):
            network.add_partition(10.0, 50.0, [{0, 1, 2, 3}, {4}])
        system.start_all()
        system.run_until(300.0)
        report = check_compacting_log(system, workload.submitted)
        assert report.agreement and report.validity
        laggard = system.node(4).agreement
        assert laggard.snapshots_installed >= 1, \
            "the laggard must have needed a snapshot"
        assert laggard.commit_index == report.max_commit
        assert workload.done()

    def test_crashed_debtor_gets_bounded_offers(self) -> None:
        system = build_system(keep_tail=8, seed=7)
        WorkloadSpec(count=40, period=0.3, start=4.0).build(system)
        CrashPlan.crash_at((10.0, 3)).schedule(system)
        system.start_all()
        system.run_until(100.0)
        total_offers = sum(system.node(pid).agreement.snapshots_sent
                           for pid in system.up_pids())
        # Retry interval 2.5s over ~90s: ≈36 offers per debtor-holding
        # replica (leadership may move, so a few replicas can hold the
        # debt).  Without the backoff this would be ~180 per holder.
        assert total_offers <= 150

    def test_offer_with_older_state_is_ignored(self) -> None:
        _, replicas = build_pair()
        replica = replicas[0]
        from repro.consensus.messages import Decide

        replica.deliver(Decide(1, 0, (0, "a")))
        replica.deliver(Decide(1, 1, (1, "b")))
        replica.deliver(SnapshotOffer(2, through=0, state=("z",),
                                      applied_ids=(9,)))
        assert replica.machine_snapshot() == ("a", "b"), \
            "a snapshot older than our commit point must not regress us"

    def test_offer_is_acked_either_way(self) -> None:
        sim, replicas = build_pair()
        replica = replicas[0]
        replica.deliver(SnapshotOffer(1, through=-1, state=(),
                                      applied_ids=()))
        sim.run_until(1.0)
        # Replica 1 received our ack (it is idle, just count arrivals).
        acks = [m for m in
                replicas[1].network.metrics.delivered_by_kind.items()
                if m[0] == "SnapshotAck"]
        assert acks and acks[0][1] >= 1

    def test_install_updates_dedup_state(self) -> None:
        _, replicas = build_pair()
        replica = replicas[0]
        replica.submit(5, "queued-cmd")
        replica.deliver(SnapshotOffer(1, through=3,
                                      state=("w", "x", "queued-cmd"),
                                      applied_ids=(1, 2, 5)))
        assert replica.commit_index == 3
        assert 5 not in replica.pending, \
            "a command covered by the snapshot must leave the queue"
        assert replica.machine_snapshot() == ("w", "x", "queued-cmd")


class TestPrepareWithFloor:
    def test_prepare_below_floor_gets_snapshot_not_promise(self) -> None:
        _, replicas = build_pair()
        replica = replicas[0]
        from repro.consensus.messages import Decide

        for instance in range(10):
            replica.deliver(Decide(1, instance, (instance, f"c{instance}")))
        replica._maybe_compact()
        assert replica.compact_floor > 0
        before = replica.snapshots_sent
        replica.deliver(Prepare(2, Ballot(5, 2), 0))
        assert replica.snapshots_sent == before + 1
        assert replica.promised < Ballot(5, 2), \
            "no promise may be given for an incompletely reportable range"

    def test_prepare_at_floor_promises_normally(self) -> None:
        _, replicas = build_pair()
        replica = replicas[0]
        from repro.consensus.messages import Decide

        for instance in range(10):
            replica.deliver(Decide(1, instance, (instance, f"c{instance}")))
        replica._maybe_compact()
        ballot = Ballot(5, 2)
        replica.deliver(Prepare(2, ballot, replica.compact_floor))
        assert replica.promised == ballot


class TestKeyValueCompaction:
    def test_kv_state_survives_compaction_and_transfer(self) -> None:
        system = build_system(keep_tail=6, seed=11, machine=KeyValueStore)
        commands = [(i, ("set", f"k{i % 4}", i)) for i in range(30)]
        for index, command in commands:
            target = [0, 1, 2][index % 3]
            system.sim.call_at(
                4.0 + 0.3 * index,
                lambda t=target, i=index, c=command:
                    system.node(t).agreement.submit(i, c))
        for network in (system.agreement_network, system.fd_network):
            network.add_partition(6.0, 25.0, [{0, 1, 2, 3}, {4}])
        system.start_all()
        system.run_until(250.0)
        stores = [dict(system.node(pid).agreement.machine_snapshot())
                  for pid in system.up_pids()]
        assert all(store == stores[0] for store in stores)
        assert set(stores[0]) == {"k0", "k1", "k2", "k3"}
