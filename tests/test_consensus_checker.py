"""Unit tests for the consensus checkers (including divergence detection)."""

from __future__ import annotations

import pytest

from repro.consensus import ConsensusSystem, check_log, check_single_decree
from repro.consensus.replica import LogReplica
from repro.sim import LinkTimings
from repro.sim.topology import source_links


def build_log_system(n: int = 3, seed: int = 0) -> ConsensusSystem:
    timings = LinkTimings(gst=2.0)
    return ConsensusSystem.build_replicated_log(
        n, lambda: source_links(n, 0, timings), seed=seed)


def build_sd_system(n: int = 3, seed: int = 0) -> ConsensusSystem:
    timings = LinkTimings(gst=2.0)
    return ConsensusSystem.build_single_decree(
        n, lambda: source_links(n, 0, timings),
        proposals=[f"v{i}" for i in range(n)], seed=seed)


class TestSingleDecreeReport:
    def test_no_decisions_yet(self) -> None:
        system = build_sd_system()
        system.start_all()
        report = check_single_decree(system)
        assert report.agreement  # vacuous
        assert report.validity
        assert not report.all_correct_decided
        assert report.latest_decision is None

    def test_type_check(self) -> None:
        system = build_log_system()
        with pytest.raises(TypeError):
            check_single_decree(system)


class TestLogReport:
    def test_type_check(self) -> None:
        system = build_sd_system()
        with pytest.raises(TypeError):
            check_log(system, set())

    def test_divergence_detected_on_tampered_logs(self) -> None:
        system = build_log_system()
        system.start_all()
        system.run_until(5.0)
        a = system.node(1).agreement
        b = system.node(2).agreement
        assert isinstance(a, LogReplica) and isinstance(b, LogReplica)
        # Forge disagreeing committed prefixes (bypassing the protocol).
        a.log[0] = (1, "x")
        a.commit_index = 0
        b.log[0] = (2, "y")
        b.commit_index = 0
        report = check_log(system, {"x", "y"})
        assert not report.agreement
        assert report.divergences

    def test_validity_catches_unknown_commands(self) -> None:
        system = build_log_system()
        system.start_all()
        replica = system.node(1).agreement
        replica.log[0] = (5, "not-submitted")
        replica.commit_index = 0
        report = check_log(system, {"something-else"})
        assert not report.validity

    def test_noop_entries_are_valid(self) -> None:
        system = build_log_system()
        system.start_all()
        replica = system.node(1).agreement
        replica.log[0] = None
        replica.commit_index = 0
        report = check_log(system, set())
        assert report.validity
        assert report.max_committed == 1

    def test_max_committed(self) -> None:
        system = build_log_system()
        system.start_all()
        report = check_log(system, set())
        assert report.max_committed == 0
