"""Unit tests for the deterministic RNG fabric."""

from __future__ import annotations

from repro.sim.rng import RngFabric


class TestStreamIdentity:
    def test_same_name_returns_same_generator(self) -> None:
        fabric = RngFabric(seed=1)
        assert fabric.stream("a") is fabric.stream("a")

    def test_name_parts_join_like_slash_string(self) -> None:
        fabric = RngFabric(seed=1)
        assert fabric.stream("link", 0, 1) is fabric.stream("link/0/1")

    def test_distinct_names_give_distinct_generators(self) -> None:
        fabric = RngFabric(seed=1)
        assert fabric.stream("a") is not fabric.stream("b")


class TestReproducibility:
    def test_same_seed_same_sequence(self) -> None:
        first = RngFabric(seed=42).stream("x")
        second = RngFabric(seed=42).stream("x")
        assert [first.random() for _ in range(20)] == \
            [second.random() for _ in range(20)]

    def test_different_seed_different_sequence(self) -> None:
        first = RngFabric(seed=42).stream("x")
        second = RngFabric(seed=43).stream("x")
        assert [first.random() for _ in range(5)] != \
            [second.random() for _ in range(5)]

    def test_creation_order_does_not_matter(self) -> None:
        fabric_ab = RngFabric(seed=7)
        a_first = fabric_ab.stream("a").random()
        fabric_ab.stream("b")

        fabric_ba = RngFabric(seed=7)
        fabric_ba.stream("b")
        a_second = fabric_ba.stream("a").random()
        assert a_first == a_second

    def test_streams_are_statistically_independent(self) -> None:
        fabric = RngFabric(seed=0)
        a = [fabric.stream("a").random() for _ in range(50)]
        b = [fabric.stream("b").random() for _ in range(50)]
        assert a != b


class TestFork:
    def test_fork_is_reproducible(self) -> None:
        first = RngFabric(seed=5).fork("child").stream("s").random()
        second = RngFabric(seed=5).fork("child").stream("s").random()
        assert first == second

    def test_fork_differs_from_parent(self) -> None:
        parent = RngFabric(seed=5)
        child = parent.fork("child")
        assert parent.stream("s").random() != child.stream("s").random()

    def test_seed_property(self) -> None:
        assert RngFabric(seed=9).seed == 9
