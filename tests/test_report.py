"""Tests for the run-report aggregator and the `repro report` command."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.harness import bench
from repro.harness.scenarios import OmegaScenario
from repro.harness.soak import sample_soak_case
from repro.obs.report import (
    REPORT_SCHEMA,
    RunRecorder,
    bench_case_report,
    render_report_text,
    scenario_report,
    soak_case_report,
    validate_report,
)


@pytest.fixture(scope="module")
def scenario_document() -> dict:
    scenario = OmegaScenario(algorithm="comm-efficient", n=4,
                             system="source", seed=11, horizon=40.0)
    return scenario_report(scenario).to_json()


class TestRunRecorder:
    def test_span_pairing(self) -> None:
        recorder = RunRecorder()
        recorder.on_span_begin(1.0, 0, "epoch", 3)
        recorder.on_span_end(4.0, 0, "epoch", None)
        assert recorder.closed_spans == [
            {"pid": 0, "name": "epoch", "start": 1.0, "end": 4.0,
             "detail": 3}]
        assert recorder.open_spans == {}

    def test_end_detail_wins_over_begin_detail(self) -> None:
        recorder = RunRecorder()
        recorder.on_span_begin(1.0, 0, "ballot.prepare", 2)
        recorder.on_span_end(2.0, 0, "ballot.prepare", "nacked")
        assert recorder.closed_spans[0]["detail"] == "nacked"

    def test_unmatched_end_is_tolerated(self) -> None:
        recorder = RunRecorder()
        recorder.on_span_end(2.0, 0, "epoch", None)
        assert recorder.closed_spans == []

    def test_rebegin_replaces_open_span(self) -> None:
        recorder = RunRecorder()
        recorder.on_span_begin(1.0, 0, "epoch", 1)
        recorder.on_span_begin(5.0, 0, "epoch", 2)
        recorder.on_span_end(6.0, 0, "epoch", None)
        assert recorder.closed_spans[0]["start"] == 5.0
        assert recorder.closed_spans[0]["detail"] == 2


class TestScenarioReport:
    def test_document_is_schema_valid(self, scenario_document: dict) -> None:
        assert scenario_document["schema"] == REPORT_SCHEMA
        assert validate_report(scenario_document) == []

    def test_verdict_and_timeline(self, scenario_document: dict) -> None:
        assert scenario_document["kind"] == "scenario"
        assert scenario_document["verdict"]["ok"] is True
        timeline = scenario_document["leader_timeline"]
        assert timeline, "a stabilizing run must change leaders at least once"
        assert all(set(entry) == {"time", "pid", "leader"}
                   for entry in timeline)
        # The comm-efficient run converges on the source, pid 0.
        assert timeline[-1]["leader"] == 0

    def test_spans_cover_election_epochs(self,
                                         scenario_document: dict) -> None:
        spans = scenario_document["spans"]
        assert "epoch" in spans
        epoch = spans["epoch"]
        # Stabilization: every process still holds its final epoch open.
        assert epoch["open"] == 4

    def test_budget_consistency(self, scenario_document: dict) -> None:
        (block,) = scenario_document["networks"]
        budget = block["message_budget"]
        assert budget["total"] == sum(budget["by_kind"].values())
        assert budget["total"] == sum(budget["by_phase"].values())
        assert budget["total"] > 0

    def test_timeliness_matches_configured_topology(
            self, scenario_document: dict) -> None:
        (block,) = scenario_document["networks"]
        assert block["timeliness"]["matches_topology"] is True
        classes = {stats["class"]
                   for stats in block["timeliness"]["links"].values()}
        assert classes <= {"timely", "eventually-timely", "lossy",
                           "insufficient-data"}

    def test_document_is_json_serialisable(self,
                                           scenario_document: dict) -> None:
        round_tripped = json.loads(json.dumps(scenario_document))
        assert round_tripped == scenario_document

    def test_render_text_mentions_the_essentials(
            self, scenario_document: dict) -> None:
        text = render_report_text(scenario_document)
        assert "run report" in text
        assert "verdict: OK" in text
        assert "leader timeline" in text
        assert "message budget" in text
        assert "matches_topology=True" in text


class TestBenchAndSoakReports:
    def test_bench_case_report(self) -> None:
        case = bench.default_suite(seed=7, experiments=("e2",),
                                   quick=True)[0]
        report = bench_case_report(case, wall_s=0.25)
        document = report.to_json()
        assert validate_report(document) == []
        assert document["kind"] == "bench"
        assert document["target"] == case.case_id
        assert document["verdict"]["ok"] is True
        assert document["meta"]["wall_s"] == 0.25
        # The bench runner's details ride along as verdict evidence.
        assert "final_leader" in document["verdict"]["evidence"]

    def test_soak_case_report(self) -> None:
        case = sample_soak_case(3, 0)
        document = soak_case_report(case).to_json()
        assert validate_report(document) == []
        assert document["kind"] == "soak"
        assert document["params"]["index"] == 0
        assert document["verdict"]["ok"] is True
        assert "meta" not in document  # no wall time given

    def test_consensus_soak_report_has_one_block_per_network(self) -> None:
        # Find the first consensus case in the sampled stream: those
        # systems run a failure-detector and an agreement network.
        index = next(i for i in range(20)
                     if sample_soak_case(3, i).kind != "omega")
        document = soak_case_report(sample_soak_case(3, index)).to_json()
        assert validate_report(document) == []
        labels = [block["label"] for block in document["networks"]]
        assert labels == ["fd", "agreement"]
        assert document["decides"], "a consensus run must decide"


class TestValidateReport:
    def test_rejects_wrong_schema_and_missing_keys(self) -> None:
        problems = validate_report({"schema": "nope"})
        assert any("schema" in p for p in problems)
        assert any("missing top-level key" in p for p in problems)

    def test_rejects_inconsistent_budget(self,
                                         scenario_document: dict) -> None:
        broken = json.loads(json.dumps(scenario_document))
        broken["networks"][0]["message_budget"]["total"] += 1
        problems = validate_report(broken)
        assert any("by_kind" in p for p in problems)

    def test_rejects_failing_verdict_without_violations(
            self, scenario_document: dict) -> None:
        broken = json.loads(json.dumps(scenario_document))
        broken["verdict"]["ok"] = False
        problems = validate_report(broken)
        assert problems == ["failing verdict carries no violations"]


class TestCli:
    def test_report_scenario_writes_valid_json(self, tmp_path,
                                               capsys) -> None:
        out = tmp_path / "report.json"
        code = main(["report", "scenario", "--algorithm", "comm-efficient",
                     "--system", "source", "--n", "4", "--seed", "11",
                     "--horizon", "40", "--out", str(out)])
        assert code == 0
        document = json.loads(out.read_text())
        assert validate_report(document) == []
        assert "verdict: OK" in capsys.readouterr().out

    def test_report_bench_case(self, tmp_path) -> None:
        out = tmp_path / "bench.json"
        code = main(["report", "bench", "--case-id", "e2/comm-efficient/n=6",
                     "--quick", "--out", str(out)])
        assert code == 0
        document = json.loads(out.read_text())
        assert document["kind"] == "bench"
        assert validate_report(document) == []

    def test_report_bench_unknown_case_lists_available(self) -> None:
        with pytest.raises(SystemExit):
            main(["report", "bench", "--case-id", "e9/unknown"])

    def test_report_soak_case(self, tmp_path) -> None:
        out = tmp_path / "soak.json"
        code = main(["report", "soak", "--seed", "3", "--case", "0",
                     "--out", str(out)])
        assert code == 0
        assert validate_report(json.loads(out.read_text())) == []
