"""Unit tests for the actor-style process runtime."""

from __future__ import annotations

from conftest import Probe, Recorder, make_pair

from repro.sim.engine import Simulation
from repro.sim.network import Network


class TestLifecycle:
    def test_start_runs_on_start_once(self, sim: Simulation, network: Network) -> None:
        starts: list[int] = []

        class Once(Recorder):
            def on_start(self) -> None:
                super().on_start()
                starts.append(1)

        p = Once(0, sim, network)
        p.start()
        p.start()
        assert starts == [1]
        assert p.started

    def test_crashed_process_cannot_start(self, sim: Simulation,
                                           network: Network) -> None:
        p = Recorder(0, sim, network)
        p.crash()
        p.start()
        assert not p.started

    def test_crash_is_idempotent(self, sim: Simulation, network: Network) -> None:
        crashes: list[int] = []

        class Crashy(Recorder):
            def on_crash(self) -> None:
                crashes.append(1)

        p = Crashy(0, sim, network)
        p.start()
        p.crash()
        p.crash()
        assert crashes == [1]
        assert p.crashed

    def test_crash_recorded_in_trace(self, sim: Simulation, network: Network) -> None:
        p = Recorder(0, sim, network)
        p.start()
        sim.run_until(3.0)
        p.crash()
        assert [c.pid for c in network.trace.crashes()] == [0]


class TestMessaging:
    def test_send_delivers_to_destination(self, sim: Simulation,
                                          network: Network) -> None:
        a, b = make_pair(sim, network)
        a.send(1, Probe(a.pid, payload=7))
        sim.run_until(1.0)
        assert [m.payload for _, m in b.received] == [7]

    def test_broadcast_excludes_self(self, sim: Simulation, network: Network) -> None:
        a, b = make_pair(sim, network)
        c = Recorder(2, sim, network)
        c.start()
        a.broadcast(Probe(a.pid))
        sim.run_until(1.0)
        assert len(a.received) == 0
        assert len(b.received) == 1
        assert len(c.received) == 1

    def test_crashed_sender_sends_nothing(self, sim: Simulation,
                                          network: Network) -> None:
        a, b = make_pair(sim, network)
        a.crash()
        a.send(1, Probe(a.pid))
        a.broadcast(Probe(a.pid))
        sim.run_until(1.0)
        assert b.received == []

    def test_crashed_receiver_gets_nothing(self, sim: Simulation,
                                           network: Network) -> None:
        a, b = make_pair(sim, network)
        a.send(1, Probe(a.pid))
        b.crash()  # crash before delivery completes
        sim.run_until(1.0)
        assert b.received == []
        assert network.metrics.dropped_by_reason["dst_crashed"] == 1


class TestTimers:
    def test_one_shot_fires_once(self, sim: Simulation, network: Network) -> None:
        p = Recorder(0, sim, network)
        p.start()
        p.set_timer("x", 1.0)
        sim.run_until(5.0)
        assert [key for _, key in p.timer_fires] == ["x"]
        assert not p.has_timer("x")

    def test_setting_existing_timer_resets_it(self, sim: Simulation,
                                              network: Network) -> None:
        p = Recorder(0, sim, network)
        p.start()
        p.set_timer("x", 1.0)
        sim.run_until(0.5)
        p.set_timer("x", 1.0)  # push expiry to t=1.5
        sim.run_until(5.0)
        assert p.timer_fires == [(1.5, "x")]

    def test_cancel_timer(self, sim: Simulation, network: Network) -> None:
        p = Recorder(0, sim, network)
        p.start()
        p.set_timer("x", 1.0)
        p.cancel_timer("x")
        sim.run_until(5.0)
        assert p.timer_fires == []

    def test_cancel_unknown_timer_is_noop(self, sim: Simulation,
                                          network: Network) -> None:
        p = Recorder(0, sim, network)
        p.start()
        p.cancel_timer("never-set")

    def test_periodic_fires_repeatedly(self, sim: Simulation,
                                       network: Network) -> None:
        p = Recorder(0, sim, network)
        p.start()
        p.set_periodic("tick", 1.0)
        sim.run_until(3.5)
        assert [t for t, _ in p.timer_fires] == [1.0, 2.0, 3.0]

    def test_periodic_can_be_stopped_from_handler(self, sim: Simulation,
                                                  network: Network) -> None:
        class StopAfterTwo(Recorder):
            def on_timer(self, key) -> None:  # noqa: ANN001
                super().on_timer(key)
                if len(self.timer_fires) == 2:
                    self.cancel_timer(key)

        p = StopAfterTwo(0, sim, network)
        p.start()
        p.set_periodic("tick", 1.0)
        sim.run_until(10.0)
        assert len(p.timer_fires) == 2

    def test_periodic_rejects_nonpositive_period(self, sim: Simulation,
                                                 network: Network) -> None:
        import pytest

        p = Recorder(0, sim, network)
        with pytest.raises(ValueError):
            p.set_periodic("tick", 0.0)

    def test_crash_cancels_all_timers(self, sim: Simulation,
                                      network: Network) -> None:
        p = Recorder(0, sim, network)
        p.start()
        p.set_timer("a", 1.0)
        p.set_periodic("b", 0.5)
        p.crash()
        sim.run_until(5.0)
        assert p.timer_fires == []

    def test_timer_racing_crash_stays_silent(self, sim: Simulation,
                                             network: Network) -> None:
        # Crash scheduled at the exact instant the timer fires, but
        # earlier in the event order: the timer must not fire.
        p = Recorder(0, sim, network)
        p.start()
        sim.call_at(1.0, p.crash)
        p.set_timer("x", 1.0)
        sim.run_until(2.0)
        assert p.timer_fires == []

    def test_distinct_keys_are_independent(self, sim: Simulation,
                                           network: Network) -> None:
        p = Recorder(0, sim, network)
        p.start()
        p.set_timer(("watch", 1), 1.0)
        p.set_timer(("watch", 2), 2.0)
        p.cancel_timer(("watch", 1))
        sim.run_until(5.0)
        assert p.timer_fires == [(2.0, ("watch", 2))]
