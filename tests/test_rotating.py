"""Tests for the rotating-coordinator baseline."""

from __future__ import annotations

import pytest

from repro.consensus import RotatingLeaderOracle, build_rotating_single_decree
from repro.sim import CrashPlan, LinkTimings, Simulation
from repro.sim.topology import source_links

TIMINGS = LinkTimings(gst=3.0)


class TestOracle:
    def test_rotation_by_time_slice(self) -> None:
        sim = Simulation()
        oracle = RotatingLeaderOracle(sim, n=3, slot=2.0)
        assert oracle.current_owner() == 0
        sim.run_until(2.0)
        assert oracle.current_owner() == 1
        sim.run_until(4.5)
        assert oracle.current_owner() == 2
        sim.run_until(6.0)
        assert oracle.current_owner() == 0

    def test_offset_desynchronizes(self) -> None:
        sim = Simulation()
        ahead = RotatingLeaderOracle(sim, n=4, slot=2.0, offset=2.0)
        behind = RotatingLeaderOracle(sim, n=4, slot=2.0)
        assert ahead.current_owner() == behind.current_owner() + 1

    def test_validation(self) -> None:
        sim = Simulation()
        with pytest.raises(ValueError):
            RotatingLeaderOracle(sim, n=0)
        with pytest.raises(ValueError):
            RotatingLeaderOracle(sim, n=3, slot=0.0)


class TestRotatingConsensus:
    def build(self, seed: int = 1, n: int = 5):  # noqa: ANN201
        return build_rotating_single_decree(
            n, lambda: source_links(n, 1, TIMINGS),
            proposals=[f"v{i}" for i in range(n)], seed=seed)

    def test_proposal_count_validated(self) -> None:
        with pytest.raises(ValueError):
            build_rotating_single_decree(
                3, lambda: source_links(3, 0, TIMINGS), proposals=["x"])

    def test_eventually_decides_failure_free(self) -> None:
        cluster = self.build()
        cluster.start_all()
        cluster.run_until(200.0)
        decisions = {cluster.process(pid).decision
                     for pid in cluster.up_pids()}
        assert len(decisions) == 1 and None not in decisions

    def test_safe_and_live_under_minority_crashes(self) -> None:
        cluster = self.build(seed=3)
        CrashPlan.crash_at((1.0, 0), (3.0, 4)).schedule(cluster)
        cluster.start_all()
        cluster.run_until(300.0)
        decided = {pid: cluster.process(pid).decision
                   for pid in cluster.up_pids()
                   if cluster.process(pid).decision is not None}
        values = set(decided.values())
        assert len(values) == 1
        assert set(decided) == set(cluster.up_pids())

    def test_agreement_across_seeds(self) -> None:
        for seed in range(4):
            cluster = self.build(seed=seed)
            cluster.start_all()
            cluster.run_until(250.0)
            values = {cluster.process(pid).decision
                      for pid in cluster.up_pids()
                      if cluster.process(pid).decision is not None}
            assert len(values) <= 1, f"seed {seed} violated agreement"

    def test_same_protocol_runs_under_both_leadership_regimes(self) -> None:
        # The motivating comparison (quantified in bench E13): the same
        # ballot protocol stays safe and live whether leadership comes
        # from rotation or from Omega.  Per-seed decision times can go
        # either way; the aggregate costs are the benchmark's business.
        from repro.consensus import ConsensusSystem, check_single_decree

        rotating = self.build(seed=2)
        CrashPlan.crash_at((1.0, 0)).schedule(rotating)
        rotating.start_all()
        rotating.run_until(300.0)
        rotating_decisions = [rotating.process(pid).decision_time
                              for pid in rotating.up_pids()]
        assert all(t is not None for t in rotating_decisions)

        omega = ConsensusSystem.build_single_decree(
            5, lambda: source_links(5, 1, TIMINGS),
            proposals=[f"v{i}" for i in range(5)], seed=2)
        CrashPlan.crash_at((1.0, 0)).schedule(omega)
        omega.start_all()
        omega.run_until(300.0)
        report = check_single_decree(omega)
        assert report.all_correct_decided
