"""Transport-seam conformance: the sim and live backends obey one contract.

``docs/TRANSPORT.md`` promises that protocol code written against the
:class:`~repro.transport.Clock`/:class:`~repro.transport.Transport`
surfaces behaves the same on the deterministic simulator and on the
asyncio/UDP backend.  This suite pins that promise: every test body is
written once, as a generator that yields "settle for this many seconds"
between actions, and runs against both backends — the sim driver turns
each yield into ``run_until``, the live driver into ``asyncio.sleep``
on a loopback cluster of real UDP sockets hosted in one loop.

Covered, per the issue: loopback delivery (with observer dispatch), a
3-process cluster electing one stable leader, and crash+restart keeping
the incarnation semantics (stale frames dropped, successor incarnation
heard).  Live timings are real wall time, so the live settles are short
but generous; the protocol configs use a small η to stabilize well
within them.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import OmegaConfig
from repro.core.registry import make_factory
from repro.obs.report import RunRecorder
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.sim.process import Process
from repro.transport import Clock, TimerHandle, Transport

CONFIG = OmegaConfig(eta=0.05, initial_timeout=0.25)
SETTLE = 1.0


class Recorder(Process):
    """A process that just records what it is handed."""

    def __init__(self, pid, sim, network) -> None:
        super().__init__(pid, sim, network)
        self.received = []

    def on_message(self, message) -> None:
        self.received.append(message)


class SimBackend:
    """The deterministic backend: virtual time, in-memory links."""

    name = "sim"

    def __init__(self, n: int) -> None:
        self.n = n
        self.clock = Simulation(seed=1)
        self.transport = Network(self.clock, observers=(RunRecorder(),))

    def settle(self, seconds: float) -> None:
        self.clock.run_until(self.clock.now + seconds)


class LiveBackend:
    """The live backend: monotonic time, loopback UDP, one loop."""

    name = "live"

    def __init__(self, n: int) -> None:
        from repro.live import LiveClock, LiveTransport

        self.n = n
        self.clock = LiveClock()
        endpoints = {pid: ("127.0.0.1", 0) for pid in range(n)}
        self.transport = LiveTransport(self.clock, endpoints, range(n),
                                       observers=(RunRecorder(),), seed=1)


def run_conformance(backend_name: str, n: int, body) -> None:
    """Drive one generator-style test body on the named backend."""
    if backend_name == "sim":
        backend = SimBackend(n)
        for seconds in body(backend):
            backend.settle(seconds)
        return

    async def main() -> None:
        backend = LiveBackend(n)
        await backend.transport.open()
        try:
            for seconds in body(backend):
                await asyncio.sleep(seconds)
        finally:
            backend.transport.close()

    asyncio.run(main())


def recorder_of(backend) -> RunRecorder:
    return backend.transport.hub.first(RunRecorder)


@pytest.fixture(params=["sim", "live"])
def backend_name(request) -> str:
    return request.param


class TestSeamShape:
    def test_both_backends_satisfy_the_protocols(self, backend_name) -> None:
        def body(backend):
            assert isinstance(backend.clock, Clock)
            assert isinstance(backend.transport, Transport)
            handle = backend.clock.call_after(60.0, lambda: None)
            assert isinstance(handle, TimerHandle)
            handle.cancel()
            handle.cancel()  # idempotent
            return
            yield  # pragma: no cover - makes body a generator

        run_conformance(backend_name, 2, body)

    def test_clock_advances_across_a_settle(self, backend_name) -> None:
        def body(backend):
            before = backend.clock.now
            yield 0.05
            assert backend.clock.now >= before + 0.04

        run_conformance(backend_name, 2, body)


class TestLoopbackDelivery:
    def test_send_delivers_and_observers_fire(self, backend_name) -> None:
        from repro.core.messages import Heartbeat

        def body(backend):
            a = Recorder(0, backend.clock, backend.transport)
            b = Recorder(1, backend.clock, backend.transport)
            a.start()
            b.start()
            backend.transport.send(0, 1, Heartbeat(sender=0))
            yield 0.5
            assert b.received == [Heartbeat(sender=0)]
            assert a.received == []
            recorder = recorder_of(backend)
            assert recorder.sent_by_kind["Heartbeat"] == 1

        run_conformance(backend_name, 2, body)

    def test_broadcast_reaches_every_other_pid(self, backend_name) -> None:
        from repro.core.messages import Heartbeat

        def body(backend):
            nodes = [Recorder(pid, backend.clock, backend.transport)
                     for pid in range(3)]
            for node in nodes:
                node.start()
            backend.transport.broadcast(0, Heartbeat(sender=0))
            yield 0.5
            assert nodes[0].received == []
            assert nodes[1].received == [Heartbeat(sender=0)]
            assert nodes[2].received == [Heartbeat(sender=0)]

        run_conformance(backend_name, 3, body)

    def test_crashed_sender_raises_runtime_error(self, backend_name) -> None:
        from repro.core.messages import Heartbeat

        def body(backend):
            a = Recorder(0, backend.clock, backend.transport)
            Recorder(1, backend.clock, backend.transport).start()
            a.start()
            a.crash()
            # NetworkError on the sim, TransportError live — the seam
            # promises a RuntimeError either way.
            with pytest.raises(RuntimeError):
                backend.transport.send(0, 1, Heartbeat(sender=0))
            return
            yield  # pragma: no cover - makes body a generator

        run_conformance(backend_name, 2, body)


class TestElection:
    def test_three_processes_elect_one_stable_leader(self,
                                                     backend_name) -> None:
        def body(backend):
            factory = make_factory("comm-efficient", CONFIG)
            nodes = [factory(pid, backend.clock, backend.transport)
                     for pid in range(3)]
            for node in nodes:
                node.start()
            yield SETTLE
            leaders = {node.leader() for node in nodes}
            assert len(leaders) == 1
            assert leaders.pop() in range(3)

        run_conformance(backend_name, 3, body)


def _frame_with_kind(kind: str) -> bytes:
    """A structurally valid frame whose ``k`` tag is ``kind``."""
    import json
    import struct

    body = json.dumps({"k": kind, "i": 0, "t": 0.0, "f": {}}).encode()
    return struct.pack(">I", len(body)) + body


def _corrupt_frames():
    import struct

    from repro.live.codec import MAX_FRAME

    return [
        pytest.param(b"\x00\x01", "truncated_frame", id="short-prefix"),
        pytest.param(struct.pack(">I", 50) + b"{}", "truncated_frame",
                     id="length-mismatch"),
        pytest.param(struct.pack(">I", MAX_FRAME + 1) + b"x" * 8,
                     "oversized_frame", id="oversized"),
        pytest.param(struct.pack(">I", 15) + b"not json at all",
                     "corrupt_frame", id="garbage-body"),
        pytest.param(struct.pack(">I", 2) + b"{}", "corrupt_frame",
                     id="missing-envelope-keys"),
        pytest.param(_frame_with_kind("NoSuchMessageClass"),
                     "unknown_kind", id="unknown-kind"),
    ]


class TestCodecRobustness:
    """Malformed datagrams drop with a precise reason; never a raise.

    The codec surface only exists on the live backend (the sim has no
    datagrams), so these ride the live half of the conformance driver:
    raw bytes go in through a real UDP socket, the drop is observed via
    the same ``on_drop`` hub dispatch both backends share, and a good
    frame afterwards proves the handler survived.
    """

    @pytest.mark.parametrize("data,reason", _corrupt_frames())
    def test_malformed_datagram_drops_with_reason(self, data,
                                                  reason) -> None:
        import socket

        from repro.core.messages import Heartbeat

        async def main() -> None:
            backend = LiveBackend(2)
            await backend.transport.open()
            try:
                Recorder(0, backend.clock, backend.transport).start()
                b = Recorder(1, backend.clock, backend.transport)
                b.start()
                with socket.socket(socket.AF_INET,
                                   socket.SOCK_DGRAM) as raw:
                    raw.sendto(data, backend.transport.endpoints[1])
                recorder = recorder_of(backend)
                deadline = asyncio.get_running_loop().time() + 2.0
                while (not recorder.dropped_by_reason.get(reason)
                       and asyncio.get_running_loop().time() < deadline):
                    await asyncio.sleep(0.02)
                assert recorder.dropped_by_reason[reason] == 1, \
                    dict(recorder.dropped_by_reason)
                # The handler survived: a well-formed frame still flows.
                backend.transport.send(0, 1, Heartbeat(sender=0))
                deadline = asyncio.get_running_loop().time() + 2.0
                while (not b.received
                       and asyncio.get_running_loop().time() < deadline):
                    await asyncio.sleep(0.02)
                assert b.received == [Heartbeat(sender=0)]
            finally:
                backend.transport.close()

        asyncio.run(main())


class TestIncarnations:
    def test_crash_restart_keeps_incarnation_semantics(self,
                                                       backend_name) -> None:
        def body(backend):
            # The crash-recovery algorithm is the one whose on_recover
            # hook restarts the protocol; the plain variants are
            # crash-stop by design.
            factory = make_factory("crash-recovery", CONFIG)
            nodes = [factory(pid, backend.clock, backend.transport)
                     for pid in range(3)]
            for node in nodes:
                node.start()
            yield SETTLE
            leader = nodes[0].leader()
            assert {node.leader() for node in nodes} == {leader}

            nodes[leader].crash()
            assert nodes[leader].crashed
            yield SETTLE
            survivors = [node for node in nodes if not node.crashed]
            new_leaders = {node.leader() for node in survivors}
            assert len(new_leaders) == 1
            assert new_leaders.pop() != leader

            nodes[leader].recover()
            assert nodes[leader].incarnation == 1
            yield SETTLE
            # The restarted node reaches agreement again under its new
            # incarnation, and nothing from incarnation 0 poisons it.
            final = {node.leader() for node in nodes}
            assert len(final) == 1

        run_conformance(backend_name, 3, body)

    def test_stale_incarnation_frames_are_dropped(self, backend_name) -> None:
        from repro.core.messages import Heartbeat

        def body(backend):
            a = Recorder(0, backend.clock, backend.transport)
            b = Recorder(1, backend.clock, backend.transport)
            a.start()
            b.start()
            backend.transport.send(0, 1, Heartbeat(sender=0))
            # Crash+recover before the frame can be processed after the
            # settle: on the sim the delivery event is in flight; live
            # the datagram sits in the socket until the loop runs.
            a.crash()
            a.recover()
            assert a.incarnation == 1
            yield 0.5
            assert b.received == []
            recorder = recorder_of(backend)
            assert recorder.dropped_by_reason["stale_incarnation"] == 1

        run_conformance(backend_name, 2, body)
