"""Transport-seam conformance: the sim and live backends obey one contract.

``docs/TRANSPORT.md`` promises that protocol code written against the
:class:`~repro.transport.Clock`/:class:`~repro.transport.Transport`
surfaces behaves the same on the deterministic simulator and on the
asyncio/UDP backend.  This suite pins that promise: every test body is
written once, as a generator that yields "settle for this many seconds"
between actions, and runs against both backends — the sim driver turns
each yield into ``run_until``, the live driver into ``asyncio.sleep``
on a loopback cluster of real UDP sockets hosted in one loop.

Covered, per the issue: loopback delivery (with observer dispatch), a
3-process cluster electing one stable leader, and crash+restart keeping
the incarnation semantics (stale frames dropped, successor incarnation
heard).  Live timings are real wall time, so the live settles are short
but generous; the protocol configs use a small η to stabilize well
within them.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import OmegaConfig
from repro.core.registry import make_factory
from repro.obs.report import RunRecorder
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.sim.process import Process
from repro.transport import Clock, TimerHandle, Transport

CONFIG = OmegaConfig(eta=0.05, initial_timeout=0.25)
SETTLE = 1.0


class Recorder(Process):
    """A process that just records what it is handed."""

    def __init__(self, pid, sim, network) -> None:
        super().__init__(pid, sim, network)
        self.received = []

    def on_message(self, message) -> None:
        self.received.append(message)


class SimBackend:
    """The deterministic backend: virtual time, in-memory links."""

    name = "sim"

    def __init__(self, n: int) -> None:
        self.n = n
        self.clock = Simulation(seed=1)
        self.transport = Network(self.clock, observers=(RunRecorder(),))

    def settle(self, seconds: float) -> None:
        self.clock.run_until(self.clock.now + seconds)


class LiveBackend:
    """The live backend: monotonic time, loopback UDP, one loop."""

    name = "live"

    def __init__(self, n: int) -> None:
        from repro.live import LiveClock, LiveTransport

        self.n = n
        self.clock = LiveClock()
        endpoints = {pid: ("127.0.0.1", 0) for pid in range(n)}
        self.transport = LiveTransport(self.clock, endpoints, range(n),
                                       observers=(RunRecorder(),), seed=1)


def run_conformance(backend_name: str, n: int, body) -> None:
    """Drive one generator-style test body on the named backend."""
    if backend_name == "sim":
        backend = SimBackend(n)
        for seconds in body(backend):
            backend.settle(seconds)
        return

    async def main() -> None:
        backend = LiveBackend(n)
        await backend.transport.open()
        try:
            for seconds in body(backend):
                await asyncio.sleep(seconds)
        finally:
            backend.transport.close()

    asyncio.run(main())


def recorder_of(backend) -> RunRecorder:
    return backend.transport.hub.first(RunRecorder)


@pytest.fixture(params=["sim", "live"])
def backend_name(request) -> str:
    return request.param


class TestSeamShape:
    def test_both_backends_satisfy_the_protocols(self, backend_name) -> None:
        def body(backend):
            assert isinstance(backend.clock, Clock)
            assert isinstance(backend.transport, Transport)
            handle = backend.clock.call_after(60.0, lambda: None)
            assert isinstance(handle, TimerHandle)
            handle.cancel()
            handle.cancel()  # idempotent
            return
            yield  # pragma: no cover - makes body a generator

        run_conformance(backend_name, 2, body)

    def test_clock_advances_across_a_settle(self, backend_name) -> None:
        def body(backend):
            before = backend.clock.now
            yield 0.05
            assert backend.clock.now >= before + 0.04

        run_conformance(backend_name, 2, body)


class TestLoopbackDelivery:
    def test_send_delivers_and_observers_fire(self, backend_name) -> None:
        from repro.core.messages import Heartbeat

        def body(backend):
            a = Recorder(0, backend.clock, backend.transport)
            b = Recorder(1, backend.clock, backend.transport)
            a.start()
            b.start()
            backend.transport.send(0, 1, Heartbeat(sender=0))
            yield 0.5
            assert b.received == [Heartbeat(sender=0)]
            assert a.received == []
            recorder = recorder_of(backend)
            assert recorder.sent_by_kind["Heartbeat"] == 1

        run_conformance(backend_name, 2, body)

    def test_broadcast_reaches_every_other_pid(self, backend_name) -> None:
        from repro.core.messages import Heartbeat

        def body(backend):
            nodes = [Recorder(pid, backend.clock, backend.transport)
                     for pid in range(3)]
            for node in nodes:
                node.start()
            backend.transport.broadcast(0, Heartbeat(sender=0))
            yield 0.5
            assert nodes[0].received == []
            assert nodes[1].received == [Heartbeat(sender=0)]
            assert nodes[2].received == [Heartbeat(sender=0)]

        run_conformance(backend_name, 3, body)

    def test_crashed_sender_raises_runtime_error(self, backend_name) -> None:
        from repro.core.messages import Heartbeat

        def body(backend):
            a = Recorder(0, backend.clock, backend.transport)
            Recorder(1, backend.clock, backend.transport).start()
            a.start()
            a.crash()
            # NetworkError on the sim, TransportError live — the seam
            # promises a RuntimeError either way.
            with pytest.raises(RuntimeError):
                backend.transport.send(0, 1, Heartbeat(sender=0))
            return
            yield  # pragma: no cover - makes body a generator

        run_conformance(backend_name, 2, body)


class TestElection:
    def test_three_processes_elect_one_stable_leader(self,
                                                     backend_name) -> None:
        def body(backend):
            factory = make_factory("comm-efficient", CONFIG)
            nodes = [factory(pid, backend.clock, backend.transport)
                     for pid in range(3)]
            for node in nodes:
                node.start()
            yield SETTLE
            leaders = {node.leader() for node in nodes}
            assert len(leaders) == 1
            assert leaders.pop() in range(3)

        run_conformance(backend_name, 3, body)


class TestIncarnations:
    def test_crash_restart_keeps_incarnation_semantics(self,
                                                       backend_name) -> None:
        def body(backend):
            # The crash-recovery algorithm is the one whose on_recover
            # hook restarts the protocol; the plain variants are
            # crash-stop by design.
            factory = make_factory("crash-recovery", CONFIG)
            nodes = [factory(pid, backend.clock, backend.transport)
                     for pid in range(3)]
            for node in nodes:
                node.start()
            yield SETTLE
            leader = nodes[0].leader()
            assert {node.leader() for node in nodes} == {leader}

            nodes[leader].crash()
            assert nodes[leader].crashed
            yield SETTLE
            survivors = [node for node in nodes if not node.crashed]
            new_leaders = {node.leader() for node in survivors}
            assert len(new_leaders) == 1
            assert new_leaders.pop() != leader

            nodes[leader].recover()
            assert nodes[leader].incarnation == 1
            yield SETTLE
            # The restarted node reaches agreement again under its new
            # incarnation, and nothing from incarnation 0 poisons it.
            final = {node.leader() for node in nodes}
            assert len(final) == 1

        run_conformance(backend_name, 3, body)

    def test_stale_incarnation_frames_are_dropped(self, backend_name) -> None:
        from repro.core.messages import Heartbeat

        def body(backend):
            a = Recorder(0, backend.clock, backend.transport)
            b = Recorder(1, backend.clock, backend.transport)
            a.start()
            b.start()
            backend.transport.send(0, 1, Heartbeat(sender=0))
            # Crash+recover before the frame can be processed after the
            # settle: on the sim the delivery event is in flight; live
            # the datagram sits in the socket until the loop runs.
            a.crash()
            a.recover()
            assert a.incarnation == 1
            yield 0.5
            assert b.received == []
            recorder = recorder_of(backend)
            assert recorder.dropped_by_reason["stale_incarnation"] == 1

        run_conformance(backend_name, 2, body)
