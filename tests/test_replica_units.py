"""Unit-level tests for LogReplica internals (piggyback, merge, dedup)."""

from __future__ import annotations

from repro.consensus.messages import (
    Accepted,
    Ballot,
    Decide,
    Forward,
    Prepare,
    Promise,
    Propose,
)
from repro.consensus.replica import NOOP, LogReplica
from repro.sim.engine import Simulation
from repro.sim.network import Network


def build_ensemble(n: int = 3, leader_of=lambda: 99):  # noqa: ANN001, ANN201
    sim = Simulation()
    network = Network(sim)
    replicas = [LogReplica(pid, sim, network, n, leader_of=leader_of)
                for pid in range(n)]
    for replica in replicas:
        replica.start()
    return sim, replicas


class TestAcceptor:
    def test_promise_reports_accepted_suffix(self) -> None:
        _, replicas = build_ensemble()
        acceptor = replicas[0]
        ballot = Ballot(1, 1)
        acceptor.deliver(Propose(1, ballot, 3, (7, "x"), -1))
        acceptor.deliver(Propose(1, ballot, 5, (8, "y"), -1))
        acceptor.deliver(Prepare(2, Ballot(2, 2), 4))
        # The promise to 2 must include instance 5 but not instance 3.
        report = acceptor._accepted_report(4)
        instances = [instance for instance, _ in report]
        assert instances == [5]

    def test_global_promise_guards_all_instances(self) -> None:
        _, replicas = build_ensemble()
        acceptor = replicas[0]
        acceptor.deliver(Prepare(1, Ballot(5, 1), 0))
        acceptor.deliver(Propose(2, Ballot(1, 2), 9, (1, "z"), -1))
        assert 9 not in acceptor.accepted, \
            "a single promise covers every instance"


class TestCommitPiggyback:
    def test_same_ballot_instances_commit_via_hint(self) -> None:
        _, replicas = build_ensemble()
        follower = replicas[0]
        ballot = Ballot(1, 1)
        follower.deliver(Propose(1, ballot, 0, (1, "a"), -1))
        follower.deliver(Propose(1, ballot, 1, (2, "b"), -1))
        assert follower.commit_index == -1
        # Next proposal carries commit_through=1: both commit.
        follower.deliver(Propose(1, ballot, 2, (3, "c"), 1))
        assert follower.commit_index == 1
        assert follower.committed_prefix() == [(1, "a"), (2, "b")]

    def test_hint_ignored_for_other_ballots(self) -> None:
        # An instance accepted under an OLDER ballot must not be treated
        # as decided by a newer leader's commit hint.
        _, replicas = build_ensemble()
        follower = replicas[0]
        follower.deliver(Propose(1, Ballot(1, 1), 0, (1, "old"), -1))
        follower.deliver(Propose(2, Ballot(2, 2), 1, (2, "new"), 0))
        assert follower.commit_index == -1, \
            "commit hint must not apply across ballots"


class TestLearnAndApply:
    def test_decide_sets_log_and_acks(self) -> None:
        _, replicas = build_ensemble()
        follower = replicas[0]
        follower.deliver(Decide(1, 0, (5, "cmd")))
        assert follower.committed_prefix() == [(5, "cmd")]
        assert follower.decision_times[0] >= 0.0

    def test_commit_index_waits_for_gaps(self) -> None:
        _, replicas = build_ensemble()
        follower = replicas[0]
        follower.deliver(Decide(1, 1, (2, "b")))
        assert follower.commit_index == -1
        follower.deliver(Decide(1, 0, (1, "a")))
        assert follower.commit_index == 1

    def test_applied_commands_skip_noops_and_duplicates(self) -> None:
        _, replicas = build_ensemble()
        follower = replicas[0]
        follower.deliver(Decide(1, 0, (1, "a")))
        follower.deliver(Decide(1, 1, NOOP))
        follower.deliver(Decide(1, 2, (1, "a")))  # duplicate id
        follower.deliver(Decide(1, 3, (2, "b")))
        assert follower.committed_prefix() == [(1, "a"), NOOP, (1, "a"),
                                               (2, "b")]
        assert follower.applied_commands() == ["a", "b"]

    def test_learned_command_leaves_pending(self) -> None:
        _, replicas = build_ensemble()
        follower = replicas[0]
        follower.submit(9, "queued")
        assert 9 in follower.pending
        follower.deliver(Decide(1, 0, (9, "queued")))
        assert 9 not in follower.pending
        follower.submit(9, "queued")  # resubmit after commit: ignored
        assert 9 not in follower.pending


class TestForwarding:
    def test_forward_message_enqueues(self) -> None:
        _, replicas = build_ensemble()
        replica = replicas[0]
        replica.deliver(Forward(2, 4, "cmd"))
        assert replica.pending[4] == "cmd"

    def test_follower_forwards_to_omega_leader(self) -> None:
        sim, replicas = build_ensemble(leader_of=lambda: 1)
        follower = replicas[0]
        follower.submit(3, "hello")
        sim.run_until(2.0)
        # The forwarded command reached node 1, which (as the leader)
        # already drove it to commitment.
        assert 3 in replicas[1].committed_ids
        assert ("hello" in replicas[1].applied_commands())
