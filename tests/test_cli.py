"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_omega_defaults(self) -> None:
        args = build_parser().parse_args(["omega"])
        assert args.algorithm == "comm-efficient"
        assert args.system == "source"
        assert args.n == 5

    def test_unknown_algorithm_rejected(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["omega", "--algorithm", "raft"])


class TestAlgorithmsCommand:
    def test_lists_registry(self, capsys) -> None:  # noqa: ANN001
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in ("all-timely", "source", "comm-efficient", "f-source"):
            assert name in out
        assert "relay-tree" in out


class TestOmegaCommand:
    def test_successful_run_exits_zero(self, capsys) -> None:  # noqa: ANN001
        code = main(["omega", "--algorithm", "comm-efficient",
                     "--system", "source", "--n", "4", "--source", "1",
                     "--horizon", "120", "--seed", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "omega holds:        True" in out
        assert "comm-efficient:     True" in out

    def test_crash_option(self, capsys) -> None:  # noqa: ANN001
        code = main(["omega", "--algorithm", "all-timely",
                     "--system", "all-et", "--n", "4",
                     "--crash", "20:0", "--horizon", "100"])
        out = capsys.readouterr().out
        assert code == 0
        assert "final leader:       1" in out

    def test_bad_crash_syntax(self) -> None:
        with pytest.raises(SystemExit):
            main(["omega", "--crash", "nonsense"])

    def test_f_source_with_targets(self, capsys) -> None:  # noqa: ANN001
        code = main(["omega", "--algorithm", "f-source",
                     "--system", "f-source", "--n", "4", "--source", "1",
                     "--targets", "0,2", "--horizon", "250"])
        assert code == 0

    def test_relay_run(self, capsys) -> None:  # noqa: ANN001
        code = main(["omega", "--system", "relay-tree", "--n", "5",
                     "--source", "2", "--relay", "--horizon", "200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "originators:" in out

    def test_relay_rejects_f_source_algorithm(self) -> None:
        with pytest.raises(SystemExit):
            main(["omega", "--algorithm", "f-source", "--relay",
                  "--system", "source", "--targets", "0"])


class TestConsensusCommand:
    def test_decides_and_exits_zero(self, capsys) -> None:  # noqa: ANN001
        code = main(["consensus", "--n", "3", "--horizon", "100",
                     "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "agreement: True   validity: True" in out

    def test_with_crash(self, capsys) -> None:  # noqa: ANN001
        code = main(["consensus", "--n", "5", "--crash", "2:4",
                     "--horizon", "150"])
        assert code == 0


class TestLogCommand:
    def test_commits_all_commands(self, capsys) -> None:  # noqa: ANN001
        code = main(["log", "--n", "4", "--commands", "8",
                     "--horizon", "150"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all commands committed: True" in out

    def test_leader_crash_flag(self, capsys) -> None:  # noqa: ANN001
        code = main(["log", "--n", "4", "--commands", "8",
                     "--crash-leader-at", "20", "--horizon", "300"])
        out = capsys.readouterr().out
        assert code == 0
        assert "crashing leader" in out


class TestQosCommand:
    def test_table_per_algorithm(self, capsys) -> None:  # noqa: ANN001
        code = main(["qos", "--n", "5", "--horizon", "150"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("all-timely", "source", "comm-efficient", "f-source"):
            assert name in out
        assert "agreement frac" in out


class TestSweepCommand:
    @pytest.mark.slow
    def test_matrix_shape(self, capsys) -> None:  # noqa: ANN001
        code = main(["sweep", "--n", "5", "--horizon", "400"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FAILS" in out and "holds + CE" in out
