"""Public-API contract tests.

The documentation deliverable is enforced, not aspirational: every name
exported through ``__all__`` must resolve, every public module, class,
function and method must carry a docstring, and the curated top-level
re-exports must stay importable.  A rename or an undocumented addition
fails here before it reaches a user.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name for _, name, __ in pkgutil.walk_packages(repro.__path__, "repro.")
)


def public_modules() -> list[str]:
    return [name for name in MODULES if not name.rsplit(".", 1)[-1]
            .startswith("_")]


class TestExports:
    @pytest.mark.parametrize("module_name", public_modules())
    def test_module_imports(self, module_name: str) -> None:
        importlib.import_module(module_name)

    @pytest.mark.parametrize("module_name", public_modules())
    def test_all_names_resolve(self, module_name: str) -> None:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_top_level_reexports(self) -> None:
        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_version(self) -> None:
        assert repro.__version__


class TestLoadSurface:
    """The PR-9 additions ride the same top-level re-export contract."""

    def test_new_names_exported(self) -> None:
        for name in ("WorkloadSpec", "WorkloadOutcome", "Batch",
                     "ShardedLog", "LoadSpec", "LoadRun", "LoadOutcome",
                     "ClientFleet", "ZipfSampler"):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_deprecated_shim_still_exported(self) -> None:
        # LogWorkload stays importable for one release (shim policy).
        assert "LogWorkload" in repro.__all__
        assert hasattr(repro, "LogWorkload")

    def test_spec_types_are_frozen(self) -> None:
        import dataclasses

        for cls in (repro.WorkloadSpec, repro.LoadSpec, repro.Batch):
            params = getattr(cls, "__dataclass_params__")
            assert params.frozen, f"{cls.__name__} must be frozen"
            assert dataclasses.is_dataclass(cls)


class TestDocstrings:
    @pytest.mark.parametrize("module_name", public_modules())
    def test_module_docstring(self, module_name: str) -> None:
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), \
            f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("module_name", public_modules())
    def test_public_items_documented(self, module_name: str) -> None:
        module = importlib.import_module(module_name)
        undocumented: list[str] = []
        for name in getattr(module, "__all__", ()):
            item = getattr(module, name)
            if not (inspect.isclass(item) or inspect.isfunction(item)):
                continue
            if item.__module__ != module_name:
                continue  # re-export; checked at its home module
            if not (item.__doc__ and item.__doc__.strip()):
                undocumented.append(name)
            if inspect.isclass(item):
                for member_name, member in vars(item).items():
                    if member_name.startswith("_"):
                        continue
                    if not inspect.isfunction(member):
                        continue
                    if member.__doc__ and member.__doc__.strip():
                        continue
                    # Overrides inherit their contract's documentation
                    # (e.g. ``on_message``, ``plan``, ``apply``).
                    if any(getattr(base, member_name, None) is not None
                           and getattr(base, member_name).__doc__
                           for base in item.__mro__[1:]):
                        continue
                    undocumented.append(f"{name}.{member_name}")
        assert not undocumented, \
            f"{module_name}: undocumented public items: {undocumented}"
