"""The example scripts must run end to end and conclude successfully.

Each example ends with internal assertions and an "OK"/summary line, so
executing ``main()`` is a real integration test of the public API.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:  # noqa: ANN001
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys) -> None:  # noqa: ANN001
        out = run_example("quickstart", capsys)
        assert "Omega holds:             True" in out
        assert "OK:" in out

    def test_leader_failover(self, capsys) -> None:  # noqa: ANN001
        out = run_example("leader_failover", capsys)
        assert "CRASH process" in out
        assert "OK: the survivors agreed on a new correct leader." in out

    def test_replicated_counter(self, capsys) -> None:  # noqa: ANN001
        out = run_example("replicated_counter", capsys)
        assert "all replicas agree: counter = 10" in out
        assert "OK:" in out

    def test_kv_store(self, capsys) -> None:  # noqa: ANN001
        out = run_example("kv_store", capsys)
        assert "crashing leader" in out
        assert "OK: identical stores" in out

    def test_debugging_tour(self, capsys) -> None:  # noqa: ANN001
        out = run_example("debugging_tour", capsys)
        assert "wire summary" in out
        assert "agreement fraction" in out
        assert "OK: re-elected" in out

    @pytest.mark.slow
    def test_synchrony_sweep(self, capsys) -> None:  # noqa: ANN001
        out = run_example("synchrony_sweep", capsys)
        # The exact matrix of the paper's trade-off: all-timely fails
        # outside its system (1), and everything except the f-source
        # algorithm fails in the ◇f-source system (3).
        assert out.count("FAILS") == 4
        assert out.count("holds + CE") == 2
        lines = [line for line in out.splitlines() if "◇f-source (f=2)" in line]
        assert lines and lines[0].rstrip().endswith("holds    |")
