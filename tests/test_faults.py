"""Unit tests for fault injection."""

from __future__ import annotations

import random

import pytest

from conftest import Recorder

from repro.sim.cluster import Cluster
from repro.sim.faults import CrashEvent, CrashPlan, random_crash_plan


def build_cluster(n: int = 4) -> Cluster:
    return Cluster.build(n, lambda pid, sim, net: Recorder(pid, sim, net), seed=1)


class TestCrashPlan:
    def test_events_sorted_by_time(self) -> None:
        plan = CrashPlan([CrashEvent(5.0, 1), CrashEvent(2.0, 0)])
        assert [e.time for e in plan.events] == [2.0, 5.0]

    def test_double_crash_rejected(self) -> None:
        with pytest.raises(ValueError):
            CrashPlan([CrashEvent(1.0, 0), CrashEvent(2.0, 0)])

    def test_crash_at_constructor(self) -> None:
        plan = CrashPlan.crash_at((1.0, 2), (3.0, 0))
        assert plan.crashed_pids == {0, 2}
        assert len(plan) == 2

    def test_schedule_crashes_at_times(self) -> None:
        cluster = build_cluster()
        CrashPlan.crash_at((1.0, 2), (3.0, 0)).schedule(cluster)
        cluster.start_all()
        cluster.run_until(2.0)
        assert cluster.crashed_pids() == [2]
        cluster.run_until(4.0)
        assert cluster.crashed_pids() == [0, 2]

    def test_empty_plan_is_fine(self) -> None:
        cluster = build_cluster()
        CrashPlan().schedule(cluster)
        cluster.run_until(1.0)
        assert cluster.crashed_pids() == []

    def test_unknown_pid_rejected_up_front(self) -> None:
        # Regression: scheduling a crash for a pid the cluster does not
        # own used to blow up later, inside the event, with a KeyError.
        cluster = build_cluster(n=4)
        with pytest.raises(ValueError, match="unknown pid 9"):
            CrashPlan.crash_at((1.0, 9)).schedule(cluster)

    def test_past_time_rejected_up_front(self) -> None:
        # Regression: crashes scheduled behind sim.now were silently
        # dropped by the event queue instead of failing loudly.
        cluster = build_cluster()
        cluster.run_until(5.0)
        with pytest.raises(ValueError, match="in the past"):
            CrashPlan.crash_at((1.0, 2)).schedule(cluster)

    def test_nothing_scheduled_when_validation_fails(self) -> None:
        cluster = build_cluster()
        with pytest.raises(ValueError):
            CrashPlan.crash_at((1.0, 0), (2.0, 9)).schedule(cluster)
        cluster.run_until(3.0)
        assert cluster.crashed_pids() == [], \
            "a rejected plan must not leave partial crashes behind"


class TestRandomCrashPlan:
    def test_respects_max_crashes(self) -> None:
        rng = random.Random(1)
        for _ in range(20):
            plan = random_crash_plan(rng, pids=range(6), max_crashes=2,
                                     earliest=0.0, latest=10.0)
            assert len(plan) <= 2

    def test_spare_pids_never_crash(self) -> None:
        rng = random.Random(2)
        for _ in range(30):
            plan = random_crash_plan(rng, pids=range(5), max_crashes=4,
                                     earliest=0.0, latest=10.0, spare=[0])
            assert 0 not in plan.crashed_pids

    def test_times_within_bounds(self) -> None:
        rng = random.Random(3)
        plan = random_crash_plan(rng, pids=range(8), max_crashes=8,
                                 earliest=2.0, latest=4.0)
        assert all(2.0 <= e.time <= 4.0 for e in plan.events)

    def test_bad_window_rejected(self) -> None:
        with pytest.raises(ValueError):
            random_crash_plan(random.Random(0), range(3), 1,
                              earliest=5.0, latest=1.0)

    def test_reproducible_given_rng(self) -> None:
        first = random_crash_plan(random.Random(9), range(6), 3, 0.0, 10.0)
        second = random_crash_plan(random.Random(9), range(6), 3, 0.0, 10.0)
        assert first.events == second.events
