"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.sim.engine import Simulation
from repro.sim.messages import Message
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.trace import TraceLog
from repro.sim.metrics import MetricsCollector


@dataclass(frozen=True)
class Probe(Message):
    """A minimal concrete message for substrate tests."""

    payload: int = 0


class Recorder(Process):
    """A process that records everything it receives and every timer."""

    def on_start(self) -> None:
        self.received: list[tuple[float, Message]] = []
        self.timer_fires: list[tuple[float, object]] = []

    def on_message(self, message: Message) -> None:
        self.received.append((self.now, message))

    def on_timer(self, key) -> None:  # noqa: ANN001 - hashable key
        self.timer_fires.append((self.now, key))


@pytest.fixture
def sim() -> Simulation:
    """A fresh simulation with a fixed seed."""
    return Simulation(seed=1234)


@pytest.fixture
def network(sim: Simulation) -> Network:
    """A traced network over timely default links."""
    return Network(sim, observers=(MetricsCollector(window=1.0),
                                   TraceLog(enabled=True)))


@pytest.fixture
def rng() -> random.Random:
    """A seeded plain RNG for policy-level tests."""
    return random.Random(99)


def make_pair(sim: Simulation, network: Network) -> tuple[Recorder, Recorder]:
    """Two started recorder processes on the network."""
    a = Recorder(0, sim, network)
    b = Recorder(1, sim, network)
    a.start()
    b.start()
    return a, b
