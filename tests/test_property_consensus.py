"""Property-based tests: consensus safety under adversarial conditions.

Safety (agreement + validity) must hold for *every* schedule — including
runs where the leader oracle misbehaves arbitrarily.  These tests drive
the protocol with random seeds, random minority crash sets, and a
deliberately chaotic rotating "leader" oracle that makes several
processes propose concurrently.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus import (
    ConsensusSystem,
    SingleDecreeConsensus,
    check_log,
    check_single_decree,
    WorkloadSpec,
)
from repro.sim import CrashPlan, LinkTimings
from repro.sim.cluster import Cluster
from repro.sim.topology import source_links

FAST = LinkTimings(gst=3.0, pre_gst_delay_max=2.0)


class TestSingleDecreeSafety:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           victims=st.sets(st.sampled_from([0, 2, 3, 4]), max_size=2),
           crash_time=st.floats(min_value=0.5, max_value=20.0))
    @settings(max_examples=12, deadline=None)
    def test_agreement_and_validity_with_minority_crashes(
            self, seed: int, victims: set[int], crash_time: float) -> None:
        system = ConsensusSystem.build_single_decree(
            5, lambda: source_links(5, 1, FAST),
            proposals=[f"v{i}" for i in range(5)], seed=seed)
        crashes = tuple((crash_time + i, pid)
                        for i, pid in enumerate(sorted(victims)))
        if crashes:
            CrashPlan.crash_at(*crashes).schedule(system)
        system.start_all()
        system.run_until(250.0)
        report = check_single_decree(system)
        assert report.agreement
        assert report.validity
        assert report.all_correct_decided

    @given(seed=st.integers(min_value=0, max_value=10_000),
           rotation=st.floats(min_value=0.3, max_value=3.0))
    @settings(max_examples=12, deadline=None)
    def test_safety_under_chaotic_leader_oracle(self, seed: int,
                                                rotation: float) -> None:
        # Every process believes it leads whenever (now / rotation) % n
        # equals its pid — several "leaders" overlap during transitions
        # and ballots duel constantly.  Safety must survive; liveness is
        # not asserted.
        n = 4

        def factory(pid, sim, network):  # noqa: ANN001, ANN202
            return SingleDecreeConsensus(
                pid, sim, network, n, f"v{pid}",
                leader_of=lambda: int(sim.now / rotation) % n)

        cluster = Cluster.build(n, factory,
                                links=source_links(n, 0, FAST), seed=seed)
        cluster.start_all()
        cluster.run_until(120.0)
        decided = {}
        proposals = set()
        for pid in cluster.pids:
            process = cluster.process(pid)
            proposals.add(process.proposal)
            if process.decision is not None:
                decided[pid] = process.decision
        assert len(set(decided.values())) <= 1, "agreement violated"
        assert set(decided.values()) <= proposals, "validity violated"


class TestReplicatedLogSafety:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           victim=st.sampled_from([0, 2, 3]),
           crash_time=st.floats(min_value=2.0, max_value=25.0))
    @settings(max_examples=8, deadline=None)
    def test_prefix_agreement_with_crash(self, seed: int, victim: int,
                                         crash_time: float) -> None:
        system = ConsensusSystem.build_replicated_log(
            4, lambda: source_links(4, 1, FAST), seed=seed)
        workload = WorkloadSpec(count=12, period=0.7, start=2.0).build(system)
        CrashPlan.crash_at((crash_time, victim)).schedule(system)
        system.start_all()
        system.run_until(250.0)
        report = check_log(system, workload.submitted)
        assert report.agreement
        assert report.validity
