"""Unit tests for the replicated-log client workload."""

from __future__ import annotations

import pytest

from repro.consensus import ConsensusSystem, LogWorkload
from repro.sim import CrashPlan, LinkTimings
from repro.sim.topology import multi_source_links


def build(n: int = 4, seed: int = 0) -> ConsensusSystem:
    timings = LinkTimings(gst=2.0)
    return ConsensusSystem.build_replicated_log(
        n, lambda: multi_source_links(n, (0, 1), timings), seed=seed)


class TestSubmission:
    def test_commands_submitted_at_rate(self) -> None:
        system = build()
        workload = LogWorkload(system, count=5, period=2.0, start=1.0)
        system.start_all()
        system.run_until(4.9)
        assert len(workload.submit_times) == 2  # t=1.0 and t=3.0
        system.run_until(20.0)
        assert len(workload.submit_times) == 5

    def test_submitted_set(self) -> None:
        system = build()
        workload = LogWorkload(system, count=3, period=1.0)
        assert workload.submitted == {"cmd-0", "cmd-1", "cmd-2"}

    def test_validation(self) -> None:
        system = build()
        with pytest.raises(ValueError):
            LogWorkload(system, count=0, period=1.0)
        with pytest.raises(ValueError):
            LogWorkload(system, count=1, period=0.0)


class TestCompletion:
    def test_done_after_commit(self) -> None:
        system = build()
        workload = LogWorkload(system, count=8, period=0.5, start=3.0)
        system.start_all()
        assert not workload.done()
        system.run_until(60.0)
        assert workload.done()

    def test_retry_survives_crash_of_target(self) -> None:
        # Crash a node that will receive some submissions; retries go to
        # surviving nodes, so everything still commits.
        system = build(seed=3)
        workload = LogWorkload(system, count=10, period=0.5, start=3.0,
                               retry_period=3.0)
        CrashPlan.crash_at((4.0, 2)).schedule(system)
        system.start_all()
        system.run_until(120.0)
        assert workload.done()

    def test_commit_latency_positive(self) -> None:
        system = build()
        workload = LogWorkload(system, count=5, period=0.5, start=3.0)
        system.start_all()
        system.run_until(60.0)
        leader = system.node(0).omega.leader()
        latencies = workload.commit_latency(leader)
        assert len(latencies) == 5
        assert all(latency > 0 for latency in latencies.values())
