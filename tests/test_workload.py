"""Unit tests for the replicated-log client workload (spec → build → run)."""

from __future__ import annotations

import math

import pytest

from repro.consensus import (
    ConsensusSystem,
    LogWorkload,
    WorkloadOutcome,
    WorkloadSpec,
)
from repro.sim import CrashPlan, LinkTimings
from repro.sim.topology import multi_source_links


def build(n: int = 4, seed: int = 0) -> ConsensusSystem:
    timings = LinkTimings(gst=2.0)
    return ConsensusSystem.build_replicated_log(
        n, lambda: multi_source_links(n, (0, 1), timings), seed=seed)


class TestSpec:
    def test_spec_is_frozen_and_pure(self) -> None:
        spec = WorkloadSpec(count=3, period=1.0)
        with pytest.raises(AttributeError):
            spec.count = 4  # type: ignore[misc]
        # Describing a workload schedules nothing: building is explicit.
        system = build()
        before = system.sim.events_executed
        WorkloadSpec(count=5, period=0.5)
        assert system.sim.events_executed == before

    def test_validation(self) -> None:
        with pytest.raises(ValueError, match="count"):
            WorkloadSpec(count=0, period=1.0)
        with pytest.raises(ValueError, match="period"):
            WorkloadSpec(count=1, period=0.0)
        with pytest.raises(ValueError, match="start"):
            WorkloadSpec(count=1, period=1.0, start=-1.0)
        with pytest.raises(ValueError, match="retry_period"):
            WorkloadSpec(count=1, period=1.0, retry_period=-2.0)

    @pytest.mark.parametrize("field", ["period", "retry_period"])
    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_rejects_non_finite(self, field: str, bad: float) -> None:
        with pytest.raises(ValueError, match=field):
            WorkloadSpec(count=1, **{field: bad})

    def test_rejects_non_finite_start(self) -> None:
        with pytest.raises(ValueError, match="start"):
            WorkloadSpec(count=1, period=1.0, start=math.nan)


class TestSubmission:
    def test_commands_submitted_at_rate(self) -> None:
        system = build()
        workload = WorkloadSpec(count=5, period=2.0, start=1.0).build(system)
        system.start_all()
        system.run_until(4.9)
        assert len(workload.submit_times) == 2  # t=1.0 and t=3.0
        system.run_until(20.0)
        assert len(workload.submit_times) == 5

    def test_submitted_set(self) -> None:
        system = build()
        workload = WorkloadSpec(count=3, period=1.0).build(system)
        assert workload.submitted == {"cmd-0", "cmd-1", "cmd-2"}

    def test_double_build_on_same_system_allowed(self) -> None:
        # Two independent drivers from one spec are two distinct fleets.
        spec = WorkloadSpec(count=2, period=1.0)
        first = spec.build(build())
        second = spec.build(build(seed=1))
        assert first is not second


class TestCompletion:
    def test_done_after_commit(self) -> None:
        system = build()
        workload = WorkloadSpec(count=8, period=0.5, start=3.0).build(system)
        system.start_all()
        assert not workload.done()
        system.run_until(60.0)
        assert workload.done()

    def test_retry_survives_crash_of_target(self) -> None:
        # Crash a node that will receive some submissions; retries go to
        # surviving nodes, so everything still commits.
        system = build(seed=3)
        workload = WorkloadSpec(count=10, period=0.5, start=3.0,
                                retry_period=3.0).build(system)
        CrashPlan.crash_at((4.0, 2)).schedule(system)
        system.start_all()
        system.run_until(120.0)
        assert workload.done()

    def test_commit_latency_positive(self) -> None:
        system = build()
        workload = WorkloadSpec(count=5, period=0.5, start=3.0).build(system)
        system.start_all()
        system.run_until(60.0)
        leader = system.node(0).omega.leader()
        latencies = workload.commit_latency(leader)
        assert len(latencies) == 5
        assert all(latency > 0 for latency in latencies.values())

    def test_run_convenience_returns_outcome(self) -> None:
        outcome = WorkloadSpec(count=6, period=0.5, start=3.0).run(
            build(), horizon=60.0)
        assert isinstance(outcome, WorkloadOutcome)
        assert outcome.done
        assert outcome.submitted == outcome.committed == 6
        assert outcome.throughput_cps and outcome.throughput_cps > 0
        assert outcome.latency_p50_s and outcome.latency_p50_s > 0
        document = outcome.to_json()
        assert set(document["latency_s"]) == {"p50", "p95", "p99"}


class TestDeprecationShim:
    def test_logworkload_warns_and_works(self) -> None:
        system = build()
        with pytest.warns(DeprecationWarning, match="WorkloadSpec"):
            workload = LogWorkload(system, count=4, period=0.5, start=3.0)
        system.start_all()
        system.run_until(60.0)
        assert workload.done()
        assert workload.submitted == {f"cmd-{i}" for i in range(4)}

    def test_logworkload_validates_like_spec(self) -> None:
        system = build()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="period"):
                LogWorkload(system, count=1, period=math.nan)
