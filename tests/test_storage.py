"""Unit tests for the stable-storage model (repro.sim.storage)."""

from __future__ import annotations

import pytest

from repro.obs import Observer, ObserverHub
from repro.sim.engine import Simulation
from repro.sim.storage import StableStorage, StorageError


class SyncSpy(Observer):
    """Records every dispatched sync event."""

    def __init__(self) -> None:
        self.events: list[tuple[float, int, tuple, bool]] = []

    def on_sync(self, time: float, pid: int, keys: tuple, ok: bool) -> None:
        self.events.append((time, pid, keys, ok))


def make_storage(sim: Simulation, **kwargs) -> StableStorage:
    return StableStorage(0, sim, sync_latency=0.02, **kwargs)


class TestReadsAndWrites:
    def test_read_your_writes_before_sync(self, sim: Simulation) -> None:
        storage = make_storage(sim)
        storage.put("x", 1)
        assert storage.get("x") == 1
        assert "x" in storage
        assert storage.dirty
        assert storage.durable_keys() == ()

    def test_get_default_for_missing_key(self, sim: Simulation) -> None:
        storage = make_storage(sim)
        assert storage.get("missing", 42) == 42
        assert "missing" not in storage

    def test_sync_commits_after_latency(self, sim: Simulation) -> None:
        storage = make_storage(sim)
        storage.put("x", 1)
        storage.sync()
        assert storage.durable_keys() == ()  # still in flight
        sim.run_until(0.1)
        assert storage.durable_keys() == ("x",)
        assert storage.get("x") == 1
        assert not storage.dirty
        assert storage.syncs_ok == 1

    def test_zero_latency_commits_synchronously(self, sim: Simulation) -> None:
        storage = StableStorage(0, sim, sync_latency=0.0)
        fired = []
        storage.put("x", 1)
        storage.sync(on_durable=lambda: fired.append(sim.now))
        assert storage.durable_keys() == ("x",)
        assert fired == [0.0]

    def test_negative_latency_rejected(self, sim: Simulation) -> None:
        with pytest.raises(StorageError, match="sync_latency"):
            StableStorage(0, sim, sync_latency=-1.0)

    def test_tuple_keys(self, sim: Simulation) -> None:
        storage = make_storage(sim)
        storage.put(("acc", 3), ("ballot", "value"))
        storage.sync()
        sim.run_until(0.1)
        assert storage.get(("acc", 3)) == ("ballot", "value")


class TestCrashSemantics:
    def test_crash_loses_unsynced_buffer(self, sim: Simulation) -> None:
        storage = make_storage(sim)
        storage.put("x", 1)
        storage.sync()
        sim.run_until(0.1)
        storage.put("x", 2)  # never synced
        storage.note_crash()
        assert storage.get("x") == 1  # previous durable value survives

    def test_crash_aborts_in_flight_batch(self, sim: Simulation) -> None:
        fired = []
        storage = make_storage(sim)
        storage.put("x", 1)
        storage.sync(on_durable=lambda: fired.append(True))
        storage.note_crash()  # before the 0.02s commit lands
        sim.run_until(0.1)
        assert storage.get("x") is None
        assert fired == []
        assert storage.batches_lost == 1
        assert storage.syncs_ok == 0

    def test_durable_map_survives_crash(self, sim: Simulation) -> None:
        storage = make_storage(sim)
        storage.put("x", 1)
        storage.sync()
        sim.run_until(0.1)
        storage.note_crash()
        assert storage.get("x") == 1

    def test_syncs_after_crash_commit_normally(self, sim: Simulation) -> None:
        storage = make_storage(sim)
        storage.note_crash()
        storage.put("x", 3)
        storage.sync()
        sim.run_until(0.2)
        assert storage.get("x") == 3
        assert storage.syncs_ok == 1


class TestFaults:
    def test_failing_sync_discards_batch(self, sim: Simulation) -> None:
        fired = []
        storage = make_storage(sim, failing_syncs=(0,))
        storage.put("x", 1)
        storage.sync(on_durable=lambda: fired.append(True))
        sim.run_until(0.1)
        assert storage.get("x") is None
        assert fired == []
        assert storage.syncs_failed == 1
        # The next sync (index 1) works.
        storage.put("x", 2)
        storage.sync(on_durable=lambda: fired.append(True))
        sim.run_until(0.2)
        assert storage.get("x") == 2
        assert fired == [True]

    def test_corrupt_key_raises_on_get(self, sim: Simulation) -> None:
        storage = make_storage(sim)
        storage.put("x", 1)
        storage.sync()
        sim.run_until(0.1)
        storage.corrupt("x")
        with pytest.raises(StorageError, match="corrupted"):
            storage.get("x")

    def test_corrupt_missing_key_rejected(self, sim: Simulation) -> None:
        storage = make_storage(sim)
        with pytest.raises(StorageError, match="missing"):
            storage.corrupt("nope")

    def test_corrupt_key_still_listed_durable(self, sim: Simulation) -> None:
        storage = make_storage(sim)
        storage.put("x", 1)
        storage.sync()
        sim.run_until(0.1)
        storage.corrupt("x")
        assert storage.durable_keys() == ("x",)


class TestObservability:
    def test_sync_events_dispatched_to_hub(self, sim: Simulation) -> None:
        hub = ObserverHub()
        spy = hub.attach(SyncSpy())
        storage = StableStorage(7, sim, hub=hub, sync_latency=0.02,
                                failing_syncs=(1,))
        storage.put("a", 1)
        storage.sync()
        storage.put("b", 2)
        storage.sync()
        sim.run_until(0.1)
        assert spy.events == [(0.02, 7, ("a",), True),
                              (0.02, 7, ("b",), False)]

    def test_aborted_batch_dispatches_nothing(self, sim: Simulation) -> None:
        hub = ObserverHub()
        spy = hub.attach(SyncSpy())
        storage = StableStorage(7, sim, hub=hub, sync_latency=0.02)
        storage.put("a", 1)
        storage.sync()
        storage.note_crash()
        sim.run_until(0.1)
        assert spy.events == []

    def test_empty_sync_still_fires_on_durable(self, sim: Simulation) -> None:
        # Relied upon by deferred acks: "sync my (already clean) state,
        # then reply" must still reply.
        fired = []
        storage = make_storage(sim)
        storage.sync(on_durable=lambda: fired.append(sim.now))
        sim.run_until(0.1)
        assert fired == [0.02]
