"""Unit tests for the Omega+consensus node pairing."""

from __future__ import annotations

import pytest

from repro.consensus import ConsensusSystem
from repro.consensus.replica import LogReplica
from repro.consensus.single import SingleDecreeConsensus
from repro.core.omega import OmegaProtocol
from repro.sim import CrashPlan, LinkTimings
from repro.sim.topology import source_links

TIMINGS = LinkTimings(gst=2.0)


def links():  # noqa: ANN201
    return source_links(4, 0, TIMINGS)


class TestBuilders:
    def test_single_decree_structure(self) -> None:
        system = ConsensusSystem.build_single_decree(
            4, links, proposals=list("abcd"))
        assert system.n == 4
        assert system.pids == [0, 1, 2, 3]
        node = system.node(2)
        assert isinstance(node.omega, OmegaProtocol)
        assert isinstance(node.agreement, SingleDecreeConsensus)
        assert node.agreement.proposal == "c"

    def test_replicated_log_structure(self) -> None:
        system = ConsensusSystem.build_replicated_log(4, links)
        assert isinstance(system.node(0).agreement, LogReplica)

    def test_proposal_count_validated(self) -> None:
        with pytest.raises(ValueError):
            ConsensusSystem.build_single_decree(4, links, proposals=["x"])

    def test_networks_are_distinct(self) -> None:
        system = ConsensusSystem.build_single_decree(
            4, links, proposals=list("abcd"))
        assert system.fd_network is not system.agreement_network
        assert system.fd_network.sim is system.agreement_network.sim

    def test_leader_oracle_wired_to_omega(self) -> None:
        system = ConsensusSystem.build_single_decree(
            4, links, proposals=list("abcd"))
        node = system.node(1)
        assert node.agreement.leader_of() == node.omega.leader()


class TestCrashCoupling:
    def test_crash_takes_down_both_layers(self) -> None:
        system = ConsensusSystem.build_single_decree(
            4, links, proposals=list("abcd"))
        system.start_all()
        system.crash(2)
        node = system.node(2)
        assert node.crashed
        assert node.omega.crashed
        assert node.agreement.crashed
        assert system.up_pids() == [0, 1, 3]

    def test_crash_plan_compatible(self) -> None:
        system = ConsensusSystem.build_single_decree(
            4, links, proposals=list("abcd"))
        CrashPlan.crash_at((1.0, 3)).schedule(system)
        system.start_all()
        system.run_until(2.0)
        assert system.node(3).crashed

    def test_staggered_start(self) -> None:
        system = ConsensusSystem.build_single_decree(
            4, links, proposals=list("abcd"))
        system.start_all(stagger=1.0)
        system.run_until(0.5)
        assert system.node(0).omega.started
        assert not system.node(3).omega.started
        system.run_until(3.5)
        assert all(system.node(pid).omega.started for pid in system.pids)


class TestLayerSeparation:
    def test_traffic_accounted_per_layer(self) -> None:
        system = ConsensusSystem.build_single_decree(
            4, links, proposals=list("abcd"))
        system.start_all()
        system.run_until(20.0)
        fd_kinds = set(system.fd_network.metrics.sent_by_kind)
        ag_kinds = set(system.agreement_network.metrics.sent_by_kind)
        assert fd_kinds and ag_kinds
        assert not fd_kinds & ag_kinds, \
            "omega and consensus messages must not share a network"
