"""Behavioural tests for the communication-efficient Omega (R2, headline)."""

from __future__ import annotations

from repro.core import analyze_omega_run, communication_report, make_factory
from repro.core.config import OmegaConfig
from repro.sim import Cluster, CrashPlan, LinkTimings
from repro.sim.topology import multi_source_links, source_links


def build(n: int = 6, source: int = 2, seed: int = 1, gst: float = 4.0,
          sources: tuple[int, ...] = ()) -> Cluster:
    timings = LinkTimings(gst=gst)
    if sources:
        links = multi_source_links(n, sources, timings)
    else:
        links = source_links(n, source, timings)
    return Cluster.build(n, make_factory("comm-efficient", OmegaConfig()),
                         links=links, seed=seed)


class TestCommunicationEfficiency:
    def test_eventually_only_leader_sends(self) -> None:
        cluster = build()
        cluster.start_all()
        cluster.run_until(150.0)
        report = analyze_omega_run(cluster)
        comm = communication_report(cluster, window=20.0)
        assert report.omega_holds
        assert comm.is_communication_efficient(report.final_leader)

    def test_exactly_n_minus_1_links_carry_traffic(self) -> None:
        cluster = build(n=6)
        cluster.start_all()
        cluster.run_until(150.0)
        comm = communication_report(cluster, window=20.0)
        assert len(comm.links) == 5
        leader = analyze_omega_run(cluster).final_leader
        assert comm.links == frozenset((leader, dst) for dst in range(6)
                                       if dst != leader)

    def test_everyone_sends_initially(self) -> None:
        cluster = build()
        cluster.start_all()
        cluster.run_until(2.0)
        early = cluster.metrics.senders_between(0.0, 2.0)
        assert early == set(range(6)), "all start as self-leaders"

    def test_message_volume_far_below_baseline(self) -> None:
        ce = build(n=6)
        ce.start_all()
        ce.run_until(200.0)
        ce_tail = ce.metrics.messages_between(150.0, 200.0)

        baseline = Cluster.build(
            6, make_factory("source", OmegaConfig()),
            links=source_links(6, 2, LinkTimings(gst=4.0)), seed=1)
        baseline.start_all()
        baseline.run_until(200.0)
        base_tail = baseline.metrics.messages_between(150.0, 200.0)
        assert ce_tail * 4 < base_tail, \
            "steady-state CE traffic must be a small fraction of all-to-all"


class TestConvergence:
    def test_converges_across_seeds(self) -> None:
        for seed in range(6):
            cluster = build(seed=seed)
            cluster.start_all()
            cluster.run_until(200.0)
            assert analyze_omega_run(cluster).omega_holds, f"seed {seed}"

    def test_duelling_candidates_resolve(self) -> None:
        # A staggered start maximizes the window where several processes
        # believe they lead; the priority race must still collapse to one.
        cluster = build(seed=3)
        cluster.start_all(stagger=2.0)
        cluster.run_until(200.0)
        report = analyze_omega_run(cluster)
        assert report.omega_holds
        comm = communication_report(cluster, window=20.0)
        assert comm.is_communication_efficient(report.final_leader)


class TestFailover:
    def test_leader_crash_failover_with_second_source(self) -> None:
        cluster = build(n=6, sources=(1, 2))
        cluster.start_all()
        cluster.run_until(80.0)
        first = analyze_omega_run(cluster).final_leader
        assert first is not None
        cluster.crash(first)
        cluster.run_until(400.0)
        report = analyze_omega_run(cluster)
        assert report.omega_holds
        assert report.final_leader != first
        comm = communication_report(cluster, window=20.0)
        assert comm.is_communication_efficient(report.final_leader)

    def test_silence_after_adoption(self) -> None:
        cluster = build()
        cluster.start_all()
        cluster.run_until(150.0)
        report = analyze_omega_run(cluster)
        # Every non-leader must have been silent for the whole tail.
        tail_senders = cluster.metrics.senders_between(130.0, 150.0)
        assert tail_senders == {report.final_leader}


class TestPriorities:
    def test_final_leader_has_minimal_priority(self) -> None:
        cluster = build()
        cluster.start_all()
        cluster.run_until(150.0)
        report = analyze_omega_run(cluster)
        leader = report.final_leader
        leader_priority = (cluster.process(leader).counter, leader)
        for pid in cluster.up_pids():
            process = cluster.process(pid)
            view = (process.counters.get(leader, 0), leader)
            own = (process.counter, pid)
            assert view <= own or pid == leader
        assert leader_priority <= (cluster.process(leader).counter, leader)
