"""Live chaos harness tests: supervision, storage, sampling, teardown.

Covers the soak-campaign layer (:mod:`repro.live.chaos`) and the
robustness machinery under it: the :class:`Backoff`/:class:`Deadline`
supervision primitives, the one-line :class:`ControlError`, SIGKILL-
surviving :class:`FileStorage`, deterministic case sampling with
byte-identical plan replay, and — the load-bearing regressions — that a
cluster whose startup or control plane fails mid-flight tears down
every already-spawned node process instead of leaking orphans.

Tests that spawn real node subprocesses are marked ``live``.
"""

from __future__ import annotations

import random
import signal
import time

import pytest

from repro.live.chaos import (
    LiveSoakCase,
    live_bench_cases,
    live_soak,
    run_live_case,
    sample_live_case,
)
from repro.live.cluster import ControlError, LiveCluster, LiveClusterSpec
from repro.live.runtime import Backoff, Deadline
from repro.live.storage import FileStorage
from repro.sim.engine import Simulation
from repro.sim.nemesis import FaultPlan, model_violations
from repro.sim.storage import StorageError


class TestBackoff:
    def test_delays_are_bounded_exponential_with_jitter(self) -> None:
        backoff = Backoff(base=0.1, factor=2.0, cap=0.5, attempts=5)
        delays = backoff.delays(random.Random(7))
        assert len(delays) == 4  # one fewer than attempts
        for index, delay in enumerate(delays):
            ceiling = min(0.5, 0.1 * 2.0 ** index)
            assert 0.0 < delay <= ceiling

    def test_deterministic_under_a_seeded_rng(self) -> None:
        backoff = Backoff()
        assert backoff.delays(random.Random(3)) == \
            backoff.delays(random.Random(3))

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            Backoff(base=0.0)
        with pytest.raises(ValueError):
            Backoff(attempts=0)
        with pytest.raises(ValueError):
            Backoff(factor=0.5)


class TestDeadline:
    def test_remaining_counts_down_and_clamps_at_zero(self) -> None:
        deadline = Deadline(0.05)
        assert not deadline.expired
        assert 0.0 < deadline.remaining <= 0.05
        time.sleep(0.07)
        assert deadline.expired
        assert deadline.remaining == 0.0
        assert deadline.elapsed >= 0.05


class TestControlError:
    def test_one_liner_names_everything(self) -> None:
        error = ControlError(pid=2, endpoint=("127.0.0.1", 4711),
                             attempts=4, elapsed=1.23,
                             cause="ConnectionRefusedError: refused")
        text = str(error)
        assert "node 2" in text
        assert "127.0.0.1:4711" in text
        assert "4 attempts" in text
        assert "1.23s" in text
        assert "refused" in text
        assert "\n" not in text
        assert error.pid == 2 and error.attempts == 4


class TestFileStorage:
    def test_snapshot_survives_reload(self, tmp_path) -> None:
        path = str(tmp_path / "node0.storage")
        first = FileStorage(0, Simulation(seed=1), path)
        first.put("ballot", (3, 1))
        first.put(("accepted", 7), ("value", ("nested", 1)))
        first.sync()
        assert set(first.durable_keys()) == {"ballot", ("accepted", 7)}

        reborn = FileStorage(0, Simulation(seed=1), path)
        assert reborn.get("ballot") == (3, 1)
        assert reborn.get(("accepted", 7)) == ("value", ("nested", 1))

    def test_unsynced_writes_do_not_reach_disk(self, tmp_path) -> None:
        path = str(tmp_path / "node0.storage")
        first = FileStorage(0, Simulation(seed=1), path)
        first.put("synced", 1)
        first.sync()
        first.put("buffered", 2)  # never synced — lost on SIGKILL

        reborn = FileStorage(0, Simulation(seed=1), path)
        assert reborn.get("synced") == 1
        assert "buffered" not in reborn

    def test_half_written_tmp_file_is_ignored(self, tmp_path) -> None:
        path = tmp_path / "node0.storage"
        storage = FileStorage(0, Simulation(seed=1), str(path))
        storage.put("key", "value")
        storage.sync()
        # A kill mid-replace leaves a stale tmp file behind; reload must
        # read the committed snapshot, not the partial one.
        (tmp_path / "node0.storage.tmp").write_bytes(b"partial garbage")
        reborn = FileStorage(0, Simulation(seed=1), str(path))
        assert reborn.get("key") == "value"

    def test_corrupt_snapshot_raises_storage_error(self, tmp_path) -> None:
        path = tmp_path / "node0.storage"
        path.write_bytes(b"this is not a pickle")
        with pytest.raises(StorageError, match="cannot reload"):
            FileStorage(0, Simulation(seed=1), str(path))


class TestSampling:
    def test_cases_are_deterministic_per_seed_and_index(self) -> None:
        assert sample_live_case(7, 3) == sample_live_case(7, 3)
        assert sample_live_case(7, 3) != sample_live_case(8, 3)
        assert sample_live_case(7, 3) != sample_live_case(7, 4)

    def test_sampling_valid_at_the_cli_horizon_floor(self) -> None:
        # `live soak` rejects --horizon < 7.0; at and above the floor,
        # every sampled plan must construct (crash+recover windows need
        # heal_by - 1 > the latest crash time, i.e. horizon > ~6.7).
        for horizon in (7.0, 8.0):
            for seed in range(10):
                for index in range(8):
                    sample_live_case(seed, index, horizon=horizon)

    def test_every_sampled_plan_replays_byte_identically(self) -> None:
        for index in range(12):
            case = sample_live_case(0, index)
            assert FaultPlan.from_repro(case.plan).to_repro() == case.plan

    def test_every_sampled_plan_is_in_model(self) -> None:
        for seed in (0, 1, 7):
            for index in range(8):
                case = sample_live_case(seed, index)
                plan = FaultPlan.from_repro(case.plan)
                assert model_violations(plan, case.envelope()) == [], \
                    case.describe()

    def test_quick_campaign_covers_the_protocol_zoo(self) -> None:
        cases = [sample_live_case(0, index) for index in range(4)]
        combos = {(case.stack, case.algorithm, case.persist)
                  for case in cases}
        assert len(combos) >= 4
        # The leading case is the CI smoke: persistent replicated log
        # with client load under a crash+respawn + asymmetric netem plan.
        lead = cases[0]
        assert lead.stack == "log" and lead.persist and lead.workload > 0
        assert "crash(" in lead.plan and "recover=" in lead.plan
        assert "dist=pareto" in lead.plan and "dist=uniform" in lead.plan

    def test_describe_carries_the_full_plan(self) -> None:
        case = sample_live_case(0, 0)
        assert f"plan=[{case.plan}]" in case.describe()
        assert f"#{case.index}" in case.describe()


class TestCaseJudging:
    def test_unparseable_plan_fails_without_running(self, tmp_path) -> None:
        case = LiveSoakCase(index=0, stack="omega",
                            algorithm="comm-efficient", n=3, persist=False,
                            workload=0, seed=1, horizon=5.0,
                            plan="gibberish(t=1)")
        result = run_live_case(case, tmp_path)
        assert result.status == "fail"
        assert "does not parse" in result.detail

    def test_out_of_model_plan_is_rejected_without_running(
            self, tmp_path) -> None:
        # Crashing the designated source (pid 0) forever exits the model.
        case = LiveSoakCase(index=0, stack="omega",
                            algorithm="comm-efficient", n=3, persist=False,
                            workload=0, seed=1, horizon=5.0,
                            plan="crash(t=1.0,pid=0)")
        result = run_live_case(case, tmp_path)
        assert result.status == "model-violation"
        assert result.replayed_exact

    def test_control_error_maps_to_named_timeout(self, tmp_path,
                                                 monkeypatch) -> None:
        error = ControlError(pid=1, endpoint=("127.0.0.1", 9), attempts=4,
                             elapsed=0.35, cause="timed out")
        monkeypatch.setattr(LiveCluster, "run",
                            lambda self: (_ for _ in ()).throw(error))
        case = sample_live_case(0, 1)
        result = run_live_case(case, tmp_path)
        assert result.status == "timeout"
        assert "node 1" in result.detail
        assert "127.0.0.1:9" in result.detail
        assert "4 attempts" in result.detail

    def test_bench_rows_carry_latency_percentiles(self) -> None:
        case = sample_live_case(0, 0)
        document = {
            "sim": {"events_executed": 10},
            "verdict": {"ok": True, "violations": []},
            "workload": {"submitted": 10, "committed": 10,
                         "throughput_cps": 1.0,
                         "latency_s": {"p50": 1.0, "p95": 2.0,
                                       "p99": 2.5}},
        }
        from repro.live.chaos import LiveSoakResult
        rows = live_bench_cases([LiveSoakResult(
            case, "ok", "", wall_s=3.0, document=document,
            replayed_exact=True)])
        assert rows[0]["ok"] is True
        assert rows[0]["result"]["latency_s"]["p95"] == 2.0
        assert rows[0]["case_id"].startswith("live-soak/log/")
        assert rows[0]["events"] == 10


def _assert_all_reaped(cluster: LiveCluster) -> None:
    """Every spawned node process is dead and reaped — no orphans."""
    for pid, proc in cluster._procs.items():
        assert proc.poll() is not None, f"node {pid} leaked"


@pytest.mark.live
class TestTeardown:
    def test_mid_spawn_failure_kills_already_spawned_nodes(
            self, tmp_path, monkeypatch) -> None:
        """A later spawn failing mid-startup must not leak earlier nodes."""
        spec = LiveClusterSpec(n=3, horizon=5.0)
        cluster = LiveCluster(spec, tmp_path / "run")
        real_spawn = LiveCluster._spawn

        def failing_spawn(self, pid, horizon, incarnation):
            if pid == 2:
                raise OSError("spawn exploded mid-startup")
            real_spawn(self, pid, horizon, incarnation)

        monkeypatch.setattr(LiveCluster, "_spawn", failing_spawn)
        with pytest.raises(OSError, match="mid-startup"):
            cluster.run()
        assert set(cluster._procs) == {0, 1}
        _assert_all_reaped(cluster)

    def test_teardown_thaws_sigstopped_nodes_before_killing(
            self, tmp_path) -> None:
        spec = LiveClusterSpec(n=2, horizon=30.0)
        cluster = LiveCluster(spec, tmp_path / "run")
        try:
            for pid in range(spec.n):
                cluster._spawn(pid, spec.horizon, incarnation=0)
            for pid in range(spec.n):
                cluster._await_ready(pid)
            cluster._procs[0].send_signal(signal.SIGSTOP)
            cluster._paused.add(0)
        finally:
            cluster.teardown()
        _assert_all_reaped(cluster)
        assert cluster._paused == set()
        cluster.teardown()  # idempotent
        _assert_all_reaped(cluster)

    def test_wedged_control_channel_yields_named_timeout_and_teardown(
            self, tmp_path) -> None:
        """Killing the nodes' control channels mid-campaign ends in a
        named timeout verdict, never a hung campaign or an orphan."""
        import threading

        spec = LiveClusterSpec(n=3, horizon=20.0, log=True, workload=2,
                               workload_start=3.0, workload_period=0.25)
        cluster = LiveCluster(spec, tmp_path / "run")

        def killer() -> None:
            # Wait until all nodes are up, then SIGKILL them behind the
            # supervisor's back (the fault plan knows nothing of this),
            # wedging every control channel the workload will try.
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                procs = list(cluster._procs.values())
                if len(procs) == spec.n and all(
                        proc.poll() is None for proc in procs):
                    break
                time.sleep(0.05)
            time.sleep(1.0)
            for proc in cluster._procs.values():
                proc.kill()

        thread = threading.Thread(target=killer)
        thread.start()
        try:
            with pytest.raises(ControlError) as excinfo:
                cluster.run()
        finally:
            thread.join()
        text = str(excinfo.value)
        assert "control channel of node" in text
        assert "attempt" in text and "backoff" in text
        _assert_all_reaped(cluster)


@pytest.mark.live
class TestLiveSoakCampaign:
    def test_single_case_campaign_runs_and_judges_ok(self,
                                                     tmp_path) -> None:
        results = live_soak(cases=1, soak_seed=0, outdir=tmp_path,
                            horizon=10.0)
        assert len(results) == 1
        result = results[0]
        assert result.status == "ok", result.detail
        assert result.replayed_exact
        assert result.case.persist and result.case.workload > 0
        workload = result.document["workload"]
        assert workload["committed"] == workload["submitted"]
        assert workload["latency_s"]["p95"] is not None
        assert (tmp_path / "case0" / "report.json").exists()
