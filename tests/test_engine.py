"""Unit tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulation, SimulationError


class TestScheduling:
    def test_call_at_runs_at_time(self, sim: Simulation) -> None:
        fired: list[float] = []
        sim.call_at(2.5, lambda: fired.append(sim.now))
        sim.run_until(5.0)
        assert fired == [2.5]

    def test_call_after_is_relative(self, sim: Simulation) -> None:
        fired: list[float] = []
        sim.call_at(1.0, lambda: sim.call_after(0.5, lambda: fired.append(sim.now)))
        sim.run_until(5.0)
        assert fired == [1.5]

    def test_scheduling_in_the_past_raises(self, sim: Simulation) -> None:
        sim.call_at(1.0, lambda: None)
        sim.run_until(2.0)
        with pytest.raises(SimulationError):
            sim.call_at(1.5, lambda: None)

    def test_negative_delay_raises(self, sim: Simulation) -> None:
        with pytest.raises(SimulationError):
            sim.call_after(-0.1, lambda: None)

    def test_scheduling_at_now_is_allowed(self, sim: Simulation) -> None:
        fired: list[float] = []
        sim.call_at(1.0, lambda: sim.call_at(sim.now, lambda: fired.append(sim.now)))
        sim.run_until(2.0)
        assert fired == [1.0]


class TestOrdering:
    def test_events_fire_in_time_order(self, sim: Simulation) -> None:
        order: list[int] = []
        sim.call_at(3.0, lambda: order.append(3))
        sim.call_at(1.0, lambda: order.append(1))
        sim.call_at(2.0, lambda: order.append(2))
        sim.run_until(10.0)
        assert order == [1, 2, 3]

    def test_same_time_events_fire_in_schedule_order(self, sim: Simulation) -> None:
        order: list[str] = []
        sim.call_at(1.0, lambda: order.append("first"))
        sim.call_at(1.0, lambda: order.append("second"))
        sim.call_at(1.0, lambda: order.append("third"))
        sim.run_until(2.0)
        assert order == ["first", "second", "third"]

    def test_now_tracks_current_event(self, sim: Simulation) -> None:
        seen: list[float] = []
        for t in (0.5, 1.5, 2.5):
            sim.call_at(t, lambda: seen.append(sim.now))
        sim.run_until(10.0)
        assert seen == [0.5, 1.5, 2.5]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim: Simulation) -> None:
        fired: list[int] = []
        handle = sim.call_at(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run_until(2.0)
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self, sim: Simulation) -> None:
        handle = sim.call_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_handle_reports_time(self, sim: Simulation) -> None:
        handle = sim.call_at(4.25, lambda: None)
        assert handle.time == 4.25


class TestRunUntil:
    def test_deadline_inclusive(self, sim: Simulation) -> None:
        fired: list[float] = []
        sim.call_at(5.0, lambda: fired.append(sim.now))
        sim.run_until(5.0)
        assert fired == [5.0]

    def test_clock_advances_to_deadline_without_events(self, sim: Simulation) -> None:
        sim.run_until(7.0)
        assert sim.now == 7.0

    def test_events_beyond_deadline_stay_queued(self, sim: Simulation) -> None:
        fired: list[float] = []
        sim.call_at(10.0, lambda: fired.append(sim.now))
        sim.run_until(5.0)
        assert fired == []
        assert sim.pending() == 1
        sim.run_until(10.0)
        assert fired == [10.0]

    def test_run_for_is_relative(self, sim: Simulation) -> None:
        sim.run_until(3.0)
        sim.run_for(2.0)
        assert sim.now == 5.0


class TestStepAndDrain:
    def test_step_runs_one_event(self, sim: Simulation) -> None:
        fired: list[int] = []
        sim.call_at(1.0, lambda: fired.append(1))
        sim.call_at(2.0, lambda: fired.append(2))
        assert sim.step()
        assert fired == [1]

    def test_step_returns_false_when_empty(self, sim: Simulation) -> None:
        assert not sim.step()

    def test_drain_runs_everything(self, sim: Simulation) -> None:
        fired: list[int] = []
        for t in range(5):
            sim.call_at(float(t), lambda t=t: fired.append(t))
        assert sim.drain() == 5
        assert fired == [0, 1, 2, 3, 4]

    def test_drain_guards_against_runaway(self, sim: Simulation) -> None:
        def reschedule() -> None:
            sim.call_after(0.1, reschedule)

        sim.call_after(0.1, reschedule)
        with pytest.raises(SimulationError):
            sim.drain(max_events=100)

    def test_pending_ignores_cancelled(self, sim: Simulation) -> None:
        handle = sim.call_at(1.0, lambda: None)
        sim.call_at(2.0, lambda: None)
        handle.cancel()
        assert sim.pending() == 1
        assert sorted(sim.pending_times()) == [2.0]


class TestProbes:
    def test_probe_fires_periodically(self, sim: Simulation) -> None:
        ticks: list[float] = []
        sim.add_probe(1.0, ticks.append)
        sim.run_until(3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_probe_period_must_be_positive(self, sim: Simulation) -> None:
        with pytest.raises(SimulationError):
            sim.add_probe(0.0, lambda now: None)

    def test_probe_sees_simulated_time(self, sim: Simulation) -> None:
        seen: list[float] = []
        sim.add_probe(0.5, lambda now: seen.append(now - sim.now))
        sim.run_until(2.0)
        assert all(diff == 0.0 for diff in seen)


class TestTombstones:
    """EventHandle.cancel is O(1) tombstoning; semantics must not change."""

    def test_cancel_releases_the_action_immediately(self, sim: Simulation) -> None:
        import weakref

        class Payload:
            def __call__(self) -> None:  # pragma: no cover - never fires
                raise AssertionError("cancelled event fired")

        payload = Payload()
        ref = weakref.ref(payload)
        handle = sim.call_at(1.0, payload)
        del payload
        assert ref() is not None  # the heap keeps the action alive...
        handle.cancel()
        assert ref() is None  # ...until cancellation drops it

    def test_mass_cancellation_compacts_the_heap(self, sim: Simulation) -> None:
        handles = [sim.call_at(float(i + 1), lambda: None) for i in range(500)]
        keeper = sim.call_at(1000.0, lambda: None)
        for handle in handles:
            handle.cancel()
        # Tombstones must not linger: the compaction sweep runs once the
        # cancelled events dominate, so the heap stays O(live events).
        assert sim.pending() == 1
        assert len(sim._heap) < 250
        assert not keeper.cancelled

    def test_cancel_after_fire_keeps_pending_accurate(self, sim: Simulation) -> None:
        handle = sim.call_at(1.0, lambda: None)
        sim.call_at(2.0, lambda: None)
        sim.run_until(1.5)
        handle.cancel()  # the event already ran; must not count as tombstone
        assert sim.pending() == 1
        sim.run_until(3.0)
        assert sim.pending() == 0

    def test_cancellation_during_compaction_window_preserves_order(
            self, sim: Simulation) -> None:
        fired: list[float] = []
        for i in range(200):
            handle = sim.call_at(float(i), lambda: None)
            handle.cancel()
        for t in (5.0, 1.0, 3.0):
            sim.call_at(t, lambda t=t: fired.append(t))
        sim.run_until(10.0)
        assert fired == [1.0, 3.0, 5.0]

    def test_events_executed_counts_only_live_events(self, sim: Simulation) -> None:
        sim.call_at(1.0, lambda: None)
        cancelled = sim.call_at(2.0, lambda: None)
        cancelled.cancel()
        sim.call_at(3.0, lambda: None)
        sim.run_until(5.0)
        assert sim.events_executed == 2

    def test_post_after_orders_with_call_at(self, sim: Simulation) -> None:
        order: list[str] = []
        sim.call_at(1.0, lambda: order.append("handle"))
        sim.post_at(1.0, lambda: order.append("posted"))
        sim.post_after(1.0, lambda: order.append("posted-after"))
        sim.run_until(2.0)
        assert order == ["handle", "posted", "posted-after"]


class TestDeterminism:
    def test_identical_runs_identical_interleavings(self) -> None:
        def run() -> list[tuple[float, int]]:
            sim = Simulation(seed=7)
            log: list[tuple[float, int]] = []

            def emit(tag: int) -> None:
                log.append((sim.now, tag))
                delay = sim.rng.stream("delays").uniform(0.1, 1.0)
                if sim.now < 20:
                    sim.call_after(delay, lambda: emit(tag))

            emit(1)
            emit(2)
            sim.run_until(25.0)
            return log

        assert run() == run()


class TestCompactThreshold:
    @pytest.mark.parametrize("threshold", [8, 64])
    def test_timer_churn_bounds_heap_size(self, threshold: int) -> None:
        """Constantly-reset timers must not grow the heap without bound.

        The sentinel timer keeps the tombstones off the heap top (where
        the run loop would discard them for free), so only the
        compaction sweep can reclaim them — the case the threshold
        policy exists for.
        """
        sim = Simulation(seed=0, compact_threshold=threshold)
        sentinel = sim.call_after(500.0, lambda: None)
        handle = sim.call_after(600.0, lambda: None)
        peak = 0

        def churn() -> None:
            nonlocal handle, peak
            handle.cancel()
            handle = sim.call_after(600.0, lambda: None)
            peak = max(peak, len(sim._heap))
            if sim.now < 50.0:
                sim.post_after(0.01, churn)

        sim.post_after(0.01, churn)
        sim.run_until(60.0)
        # ~5000 cancels happened; the live heap holds two timers.  The
        # compaction policy keeps the heap within a small multiple of
        # the threshold rather than letting tombstones accumulate.
        assert sim.pending() == 2
        assert not sentinel.cancelled
        assert peak <= 4 * threshold + 8
        assert sim.profile()["compactions"] > 0

    def test_lower_threshold_compacts_more_eagerly(self) -> None:
        def compactions(threshold: int) -> int:
            sim = Simulation(seed=0, compact_threshold=threshold)
            for _ in range(512):
                sim.call_after(10.0, lambda: None).cancel()
            return sim.profile()["compactions"]

        assert compactions(8) > compactions(64)

    def test_threshold_must_be_positive(self) -> None:
        with pytest.raises(SimulationError):
            Simulation(compact_threshold=0)

    def test_bucket_width_must_be_power_of_two(self) -> None:
        with pytest.raises(SimulationError):
            Simulation(bucket_width=0.1)
        Simulation(bucket_width=0.25)  # fine


class TestBatchPaths:
    def test_post_batch_matches_sequential_posts(self) -> None:
        def run(batched: bool) -> list[tuple[float, str]]:
            sim = Simulation(seed=0)
            log: list[tuple[float, str]] = []
            items = [(0.5, lambda: log.append((sim.now, "a"))),
                     (0.25, lambda: log.append((sim.now, "b"))),
                     (0.5, lambda: log.append((sim.now, "c")))]
            if batched:
                sim.post_batch(items)
            else:
                for time, action in items:
                    sim.post_at(time, action)
            sim.run_until(1.0)
            return log

        assert run(True) == run(False) == [(0.25, "b"), (0.5, "a"), (0.5, "c")]

    def test_post_batch_rejects_past_times(self, sim: Simulation) -> None:
        sim.post_at(1.0, lambda: None)
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.post_batch([(2.0, lambda: None)])

    def test_post_at_far_future_and_infinity(self, sim: Simulation) -> None:
        fired: list[float] = []
        sim.post_at(float("inf"), lambda: fired.append(sim.now))
        sim.post_at(2.0**61, lambda: fired.append(sim.now))
        sim.post_at(1.0, lambda: fired.append(sim.now))
        sim.run_until(10.0)
        assert fired == [1.0]
        assert sim.pending() == 2

    def test_run_batch_drains_one_window(self, sim: Simulation) -> None:
        log: list[str] = []
        sim.post_at(0.01, lambda: log.append("w0-a"))
        sim.post_at(0.05, lambda: log.append("w0-b"))
        sim.post_at(0.0625, lambda: log.append("w1"))  # next window
        assert sim.run_batch() == 2
        assert log == ["w0-a", "w0-b"]
        assert sim.now == 0.05  # clock sits on the last executed event
        assert sim.run_batch() == 1
        assert log == ["w0-a", "w0-b", "w1"]
        assert sim.run_batch() == 0

    def test_run_batch_respects_deadline(self, sim: Simulation) -> None:
        log: list[str] = []
        sim.post_at(0.01, lambda: log.append("a"))
        sim.post_at(0.05, lambda: log.append("b"))
        assert sim.run_batch(deadline=0.02) == 1
        assert log == ["a"]

    def test_late_posts_into_open_window_still_order(self) -> None:
        # An event that posts into its own (already sorted) window must
        # merge through the overflow heap without losing order.
        sim = Simulation(seed=0)
        log: list[tuple[float, str]] = []

        def first() -> None:
            log.append((sim.now, "first"))
            sim.post_at(sim.now + 0.01, lambda: log.append((sim.now, "late")))

        sim.post_at(0.01, first)
        sim.post_at(0.03, lambda: log.append((sim.now, "second")))
        sim.run_until(1.0)
        assert log == [(0.01, "first"), (0.02, "late"), (0.03, "second")]
