"""Tests for state-machine replication on the log."""

from __future__ import annotations

import pytest

from repro.consensus import (
    ConsensusSystem,
    CounterMachine,
    KeyValueStore,
    LogReplica,
    ReplicatedStateMachine,
)
from repro.sim import CrashPlan, LinkTimings
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.sim.topology import multi_source_links


class TestKeyValueStore:
    def test_set_returns_previous(self) -> None:
        store = KeyValueStore()
        assert store.apply(("set", "a", 1)) is None
        assert store.apply(("set", "a", 2)) == 1
        assert store.get("a") == 2

    def test_delete(self) -> None:
        store = KeyValueStore()
        store.apply(("set", "a", 1))
        assert store.apply(("delete", "a")) is True
        assert store.apply(("delete", "a")) is False
        assert store.get("a", "gone") == "gone"

    def test_cas(self) -> None:
        store = KeyValueStore()
        store.apply(("set", "a", 1))
        assert store.apply(("cas", "a", 1, 2)) is True
        assert store.apply(("cas", "a", 1, 3)) is False
        assert store.get("a") == 2

    def test_snapshot_is_comparable(self) -> None:
        left = KeyValueStore()
        right = KeyValueStore()
        for store in (left, right):
            store.apply(("set", "x", 1))
            store.apply(("set", "y", 2))
        assert left.snapshot() == right.snapshot()
        assert len(left) == 2

    def test_unknown_command(self) -> None:
        with pytest.raises(ValueError):
            KeyValueStore().apply(("mystery",))


class TestCounterMachine:
    def test_inc_dec(self) -> None:
        counter = CounterMachine()
        assert counter.apply("inc") == 1
        assert counter.apply("inc") == 2
        assert counter.apply("dec") == 1
        assert counter.snapshot() == 1

    def test_unknown_command(self) -> None:
        with pytest.raises(ValueError):
            CounterMachine().apply("reset")


def make_replica() -> LogReplica:
    sim = Simulation()
    network = Network(sim)
    replica = LogReplica(0, sim, network, 3, leader_of=lambda: 99)
    LogReplica(1, sim, network, 3, leader_of=lambda: 99)
    return replica


class TestReplicatedStateMachine:
    def test_sync_applies_committed_prefix_in_order(self) -> None:
        replica = make_replica()
        rsm = ReplicatedStateMachine(replica, KeyValueStore())
        replica.log = {0: (1, ("set", "a", 1)), 1: (2, ("set", "a", 2))}
        replica.commit_index = 1
        assert rsm.sync() == 2
        assert rsm.machine.get("a") == 2
        assert rsm.applied_through == 1

    def test_sync_is_incremental(self) -> None:
        replica = make_replica()
        rsm = ReplicatedStateMachine(replica, CounterMachine())
        replica.log = {0: (1, "inc")}
        replica.commit_index = 0
        assert rsm.sync() == 1
        assert rsm.sync() == 0
        replica.log[1] = (2, "inc")
        replica.commit_index = 1
        assert rsm.sync() == 1
        assert rsm.snapshot() == 2

    def test_noops_and_duplicate_ids_skipped(self) -> None:
        replica = make_replica()
        rsm = ReplicatedStateMachine(replica, CounterMachine())
        replica.log = {0: (1, "inc"), 1: None, 2: (1, "inc"), 3: (2, "inc")}
        replica.commit_index = 3
        assert rsm.sync() == 2
        assert rsm.snapshot() == 2

    def test_results_recorded_per_command(self) -> None:
        replica = make_replica()
        rsm = ReplicatedStateMachine(replica, CounterMachine())
        replica.log = {0: (7, "inc"), 1: (8, "inc")}
        replica.commit_index = 1
        assert rsm.result_of(7) == 1
        assert rsm.result_of(8) == 2
        assert rsm.result_of(99) is None


class TestEndToEndReplication:
    def test_kv_replicas_converge_despite_leader_crash(self) -> None:
        timings = LinkTimings(gst=3.0)
        system = ConsensusSystem.build_replicated_log(
            5, lambda: multi_source_links(5, (1, 2), timings), seed=6)
        machines = {pid: ReplicatedStateMachine(system.node(pid).agreement,
                                                KeyValueStore())
                    for pid in system.pids}
        commands = [(index, ("set", f"k{index % 3}", index))
                    for index in range(12)]
        # Round-robin over the nodes that will survive (node 1 crashes);
        # clients whose node dies would resubmit elsewhere in practice.
        survivors = [0, 2, 3, 4]
        for index, command in commands:
            target = survivors[index % 4]
            system.sim.call_at(
                5.0 + 0.5 * index,
                lambda target=target, index=index, command=command:
                    system.node(target).agreement.submit(index, command))
        CrashPlan.crash_at((9.0, 1)).schedule(system)
        system.start_all()
        system.run_until(300.0)
        snapshots = {machines[pid].snapshot() for pid in system.up_pids()}
        assert len(snapshots) == 1, "replicated KV stores diverged"
        # Commands in flight during the crash may be re-proposed out of
        # client order — what replication guarantees is the *same* order
        # everywhere, so each key holds some value that was written to it
        # and all replicas agree on which.
        final = dict(snapshots.pop())
        assert final["k0"] in {0, 3, 6, 9}
        assert final["k1"] in {1, 4, 7, 10}
        assert final["k2"] in {2, 5, 8, 11}
        # And every replica applied all 12 commands exactly once.
        for pid in system.up_pids():
            assert len(machines[pid].results) == 12
