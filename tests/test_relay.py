"""Tests for the message-relaying extension (eventually timely paths)."""

from __future__ import annotations

import pytest

from repro.core import (
    CommEfficientOmega,
    OmegaConfig,
    SourceOmega,
    analyze_omega_run,
    make_factory,
    make_relayed,
    origins_between,
)
from repro.core.relay import BROADCAST, Relay, SeenTracker
from repro.core.messages import Alive
from repro.sim import Cluster, LinkTimings
from repro.sim.topology import relay_tree_links, source_links

ADVERSARIAL = LinkTimings(gst=4.0, fair_outage_period=15.0,
                          fair_outage_growth=4.0)


class TestSeenTracker:
    def test_first_sight_is_new(self) -> None:
        tracker = SeenTracker()
        assert not tracker.check_and_add(0, 0)
        assert tracker.check_and_add(0, 0)

    def test_origins_are_independent(self) -> None:
        tracker = SeenTracker()
        assert not tracker.check_and_add(0, 0)
        assert not tracker.check_and_add(1, 0)

    def test_floor_compaction(self) -> None:
        tracker = SeenTracker()
        for seq in range(100):
            tracker.check_and_add(3, seq)
        assert tracker.seen_count(3) == 100
        assert tracker._sparse[3] == set(), "contiguous prefix compacted"

    def test_out_of_order_then_compacted(self) -> None:
        tracker = SeenTracker()
        tracker.check_and_add(0, 2)
        tracker.check_and_add(0, 0)
        tracker.check_and_add(0, 1)
        assert tracker._floor[0] == 3

    def test_sparse_limit_bounds_memory(self) -> None:
        tracker = SeenTracker(sparse_limit=10)
        # Sequence 0 is permanently lost: every other number arrives.
        for seq in range(1, 1000):
            tracker.check_and_add(0, seq)
        assert len(tracker._sparse[0]) <= 10

    def test_lost_seq_treated_as_seen_after_compaction(self) -> None:
        tracker = SeenTracker(sparse_limit=5)
        for seq in range(1, 20):
            tracker.check_and_add(0, seq)
        assert tracker.check_and_add(0, 0), \
            "a gap the compactor skipped counts as seen"

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            SeenTracker(sparse_limit=0)


class TestRelayEnvelope:
    def test_fairness_key_distinguishes_origin_and_inner(self) -> None:
        inner = Alive(0, counter=0, phase=0)
        a = Relay(1, 0, 5, BROADCAST, inner)
        b = Relay(1, 2, 5, BROADCAST, inner)
        assert a.fairness_key() != b.fairness_key()
        assert a.fairness_key()[0] == "Relay"


class TestMakeRelayed:
    def test_class_identity_and_caching(self) -> None:
        cls = make_relayed(CommEfficientOmega)
        assert cls.__name__ == "RelayedCommEfficientOmega"
        assert make_relayed(CommEfficientOmega) is cls
        assert issubclass(cls, CommEfficientOmega)

    def test_independent_base_classes(self) -> None:
        assert make_relayed(SourceOmega) is not make_relayed(CommEfficientOmega)


def run_relayed(n: int = 6, source: int = 2, seed: int = 1,
                horizon: float = 400.0) -> Cluster:
    cls = make_relayed(CommEfficientOmega)
    cluster = Cluster.build(
        n, lambda pid, sim, net: cls(pid, sim, net, OmegaConfig()),
        links=relay_tree_links(n, source, ADVERSARIAL), seed=seed)
    cluster.start_all()
    cluster.run_until(horizon)
    return cluster


class TestRelayedOmegaOnPathTopology:
    def test_unrelayed_fails_on_tree_topology(self) -> None:
        cluster = Cluster.build(
            6, make_factory("comm-efficient", OmegaConfig()),
            links=relay_tree_links(6, 2, ADVERSARIAL), seed=1)
        cluster.start_all()
        cluster.run_until(400.0)
        late_flaps = sum(
            1 for pid in cluster.up_pids()
            for time, _ in cluster.process(pid).history if time > 250.0)
        assert late_flaps > 0, \
            "without relaying no process is a direct source: must flap"

    def test_relayed_stabilizes_on_the_path_source(self) -> None:
        cluster = run_relayed()
        report = analyze_omega_run(cluster)
        assert report.omega_holds
        assert report.final_leader == 2
        assert report.stabilization_time < 250.0

    def test_eventually_only_leader_originates(self) -> None:
        cluster = run_relayed()
        end = cluster.sim.now
        assert origins_between(cluster, end - 40.0, end) == {2}

    def test_everyone_forwards(self) -> None:
        cluster = run_relayed()
        end = cluster.sim.now
        senders = cluster.metrics.senders_between(end - 40.0, end)
        assert senders == set(range(6)), \
            "relays keep forwarding the leader's heartbeats"

    def test_reproducible(self) -> None:
        first = analyze_omega_run(run_relayed(seed=5))
        second = analyze_omega_run(run_relayed(seed=5))
        assert first.final_leader == second.final_leader
        assert first.stabilization_time == second.stabilization_time


class TestRelayedOnDirectSourceSystem:
    def test_relaying_is_harmless_where_direct_links_exist(self) -> None:
        cls = make_relayed(CommEfficientOmega)
        cluster = Cluster.build(
            5, lambda pid, sim, net: cls(pid, sim, net, OmegaConfig()),
            links=source_links(5, 1, LinkTimings(gst=4.0)), seed=3)
        cluster.start_all()
        cluster.run_until(200.0)
        report = analyze_omega_run(cluster)
        assert report.omega_holds

    def test_origins_between_rejects_unrelayed(self) -> None:
        cluster = Cluster.build(
            4, make_factory("comm-efficient", OmegaConfig()),
            links=source_links(4, 0, LinkTimings(gst=2.0)), seed=1)
        cluster.start_all()
        with pytest.raises(TypeError):
            origins_between(cluster, 0.0, 1.0)
