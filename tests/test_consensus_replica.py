"""Behavioural tests for the replicated log (repeated consensus)."""

from __future__ import annotations

from repro.consensus import (
    ConsensusSystem,
    LogReplica,
    WorkloadSpec,
    check_log,
)
from repro.sim import CrashPlan, LinkTimings
from repro.sim.topology import multi_source_links, source_links


def build(n: int = 5, seed: int = 1, sources: tuple[int, ...] = (1,),
          gst: float = 3.0, **kwargs) -> ConsensusSystem:  # noqa: ANN003
    timings = LinkTimings(gst=gst)
    return ConsensusSystem.build_replicated_log(
        n, lambda: multi_source_links(n, sources, timings), seed=seed,
        **kwargs)


class TestHappyPath:
    def test_commands_commit_everywhere(self) -> None:
        system = build()
        workload = WorkloadSpec(count=20, period=0.5, start=5.0).build(system)
        system.start_all()
        system.run_until(120.0)
        report = check_log(system, workload.submitted)
        assert report.agreement and report.validity
        assert workload.done()
        assert all(count >= 20 for count in report.committed_by_pid.values())

    def test_every_command_exactly_once_in_state_machine(self) -> None:
        system = build(seed=2)
        workload = WorkloadSpec(count=15, period=0.5, start=5.0).build(system)
        system.start_all()
        system.run_until(120.0)
        for pid in system.up_pids():
            replica = system.node(pid).agreement
            assert isinstance(replica, LogReplica)
            applied = replica.applied_commands()
            assert sorted(applied) == sorted(workload.submitted)

    def test_logs_are_prefix_consistent_midway(self) -> None:
        system = build(seed=3)
        WorkloadSpec(count=30, period=0.3, start=5.0).build(system)
        system.start_all()
        system.run_until(25.0)  # mid-flight on purpose
        prefixes = {}
        for pid in system.up_pids():
            prefixes[pid] = system.node(pid).agreement.committed_prefix()
        lengths = {pid: len(p) for pid, p in prefixes.items()}
        longest = max(lengths, key=lengths.get)
        for pid, prefix in prefixes.items():
            assert prefixes[longest][:len(prefix)] == prefix

    def test_submit_to_follower_is_forwarded(self) -> None:
        system = build(seed=4)
        system.start_all()
        system.run_until(30.0)
        leader = system.node(0).omega.leader()
        follower = next(pid for pid in system.up_pids() if pid != leader)
        system.node(follower).agreement.submit(1000, "forwarded-cmd")
        system.run_until(90.0)
        report = check_log(system, {"forwarded-cmd"})
        assert report.agreement and report.validity
        assert report.max_committed >= 1


class TestLeaderCrash:
    def test_failover_preserves_log(self) -> None:
        system = build(sources=(1, 2), seed=5)
        workload = WorkloadSpec(count=30, period=0.5, start=5.0).build(system)
        system.start_all()
        system.run_until(15.0)
        leader = system.node(3).omega.leader()
        system.crash(leader)
        system.run_until(400.0)
        report = check_log(system, workload.submitted)
        assert report.agreement and report.validity
        # every command still committed at every correct replica
        for pid in system.up_pids():
            replica = system.node(pid).agreement
            assert sorted(replica.applied_commands()) == \
                sorted(workload.submitted)

    def test_noop_fill_after_takeover(self) -> None:
        # A new leader must be able to fill gaps it inherits; run a
        # takeover-heavy schedule and just assert logs agree at the end.
        system = build(sources=(1, 2), seed=6)
        workload = WorkloadSpec(count=25, period=0.4, start=5.0).build(system)
        CrashPlan.crash_at((12.0, 1)).schedule(system)
        system.start_all()
        system.run_until(400.0)
        report = check_log(system, workload.submitted)
        assert report.agreement and report.validity
        assert workload.done()


class TestCommunicationPattern:
    def test_steady_state_uses_leader_adjacent_links_only(self) -> None:
        system = build(seed=7)
        WorkloadSpec(count=10, period=0.5, start=5.0).build(system)
        system.start_all()
        system.run_until(150.0)
        leader = system.node(0).omega.leader()
        links = system.agreement_network.metrics.links_between(130.0, 150.0)
        for src, dst in links:
            assert src == leader or dst == leader, \
                f"non-leader-adjacent link {(src, dst)} active in steady state"

    def test_quiescence_with_no_commands(self) -> None:
        system = build(seed=8)
        system.start_all()
        system.run_until(100.0)
        # No workload: after initial leader establishment the agreement
        # network should be fully quiet (Omega chatter is on the other
        # network).
        tail = system.agreement_network.metrics.messages_between(80.0, 100.0)
        assert tail == 0


class TestDeduplication:
    def test_resubmitted_commands_apply_once(self) -> None:
        system = build(seed=9)
        system.start_all()
        system.run_until(30.0)
        leader = system.node(0).omega.leader()
        replica = system.node(leader).agreement
        for _ in range(5):
            replica.submit(77, "dup-cmd")
        system.run_until(90.0)
        for pid in system.up_pids():
            applied = system.node(pid).agreement.applied_commands()
            assert applied.count("dup-cmd") == 1
