"""Unit tests for the experiment scenario harness."""

from __future__ import annotations

import pytest

from repro.harness import OmegaScenario
from repro.sim.links import EventuallyTimelyLink, FairLossyLink, LossyAsyncLink


class TestValidation:
    def test_unknown_system(self) -> None:
        with pytest.raises(ValueError):
            OmegaScenario(algorithm="source", n=4, system="mesh")

    def test_bad_n(self) -> None:
        with pytest.raises(ValueError):
            OmegaScenario(algorithm="source", n=1, system="source")

    def test_bad_horizon(self) -> None:
        with pytest.raises(ValueError):
            OmegaScenario(algorithm="source", n=3, system="source", horizon=0)


class TestDerived:
    def test_effective_f_prefers_explicit(self) -> None:
        scenario = OmegaScenario(algorithm="f-source", n=5, system="f-source",
                                 targets=(1, 2), f=3)
        assert scenario.effective_f == 3

    def test_effective_f_from_targets(self) -> None:
        scenario = OmegaScenario(algorithm="f-source", n=5, system="f-source",
                                 targets=(1, 2))
        assert scenario.effective_f == 2

    def test_with_seed(self) -> None:
        scenario = OmegaScenario(algorithm="source", n=4, system="source")
        assert scenario.with_seed(9).seed == 9
        assert scenario.seed == 0, "original unchanged"

    def test_link_maps_match_system(self) -> None:
        source = OmegaScenario(algorithm="source", n=4, system="source",
                               source=1)
        links = source.link_map()
        assert isinstance(links[(1, 0)], EventuallyTimelyLink)
        assert isinstance(links[(0, 1)], FairLossyLink)

        lossy = OmegaScenario(algorithm="source", n=4, system="source-lossy",
                              source=1)
        assert isinstance(lossy.link_map()[(0, 1)], LossyAsyncLink)

    def test_multi_source_defaults_to_single(self) -> None:
        scenario = OmegaScenario(algorithm="source", n=4,
                                 system="multi-source", source=2)
        links = scenario.link_map()
        assert isinstance(links[(2, 0)], EventuallyTimelyLink)
        assert isinstance(links[(0, 2)], FairLossyLink)


class TestExecution:
    def test_run_produces_outcome(self) -> None:
        scenario = OmegaScenario(algorithm="comm-efficient", n=4,
                                 system="source", source=1, horizon=100.0,
                                 seed=5)
        outcome = scenario.run()
        assert outcome.stabilized
        assert outcome.communication_efficient
        assert outcome.cluster.sim.now == 100.0

    def test_crashes_applied(self) -> None:
        scenario = OmegaScenario(algorithm="all-timely", n=4, system="all-et",
                                 crashes=((10.0, 0),), horizon=80.0)
        outcome = scenario.run()
        assert outcome.cluster.crashed_pids() == [0]
        assert outcome.report.final_leader == 1

    def test_build_without_run(self) -> None:
        scenario = OmegaScenario(algorithm="source", n=3, system="source")
        cluster = scenario.build()
        assert cluster.sim.now == 0.0
        assert not cluster.process(0).started

    def test_same_seed_reproduces_outcome(self) -> None:
        scenario = OmegaScenario(algorithm="comm-efficient", n=5,
                                 system="source", source=0, horizon=90.0)
        first = scenario.run()
        second = scenario.run()
        assert first.report.final_leader == second.report.final_leader
        assert first.report.stabilization_time == \
            second.report.stabilization_time
        assert first.cluster.metrics.total_sent == \
            second.cluster.metrics.total_sent
