"""Documentation smoke tests: quoted commands parse, links resolve.

Two classes of doc rot are cheap to catch mechanically and embarrassing
to ship:

* a quoted ``python -m repro ...`` command that the current CLI no
  longer accepts (renamed flag, removed subcommand).  Every such
  command in README.md, EXPERIMENTS.md, DESIGN.md and docs/*.md is
  extracted — from fenced code blocks and inline backtick spans — and
  pushed through :func:`repro.cli.build_parser`'s ``parse_args``.
  Placeholder commands (``<date>``, ``--case N``, trailing ``...``) are
  skipped; everything concrete must parse.
* a markdown link (or a backticked repo path like ``docs/MODEL.md``)
  pointing at a file that does not exist.

Neither test runs anything; both are pure-parse and instant.
"""

from __future__ import annotations

import re
import shlex
from pathlib import Path

import pytest

from repro.cli import build_parser

ROOT = Path(__file__).resolve().parents[1]

DOC_FILES = sorted(
    [ROOT / "README.md", ROOT / "EXPERIMENTS.md", ROOT / "DESIGN.md"]
    + list((ROOT / "docs").glob("*.md"))
)

_FENCE = re.compile(r"```[^\n]*\n(.*?)```", re.DOTALL)
_INLINE = re.compile(r"`([^`]+)`", re.DOTALL)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Backticked references that clearly name a repo file.
_PATH_REF = re.compile(
    r"^(?:docs|src|tests|examples|benchmarks)/[A-Za-z0-9_.\-/]+$")

#: Tokens that mark a command as illustrative, not runnable: markdown
#: placeholders, ellipses, shell substitutions.
_PLACEHOLDER = re.compile(r"[<>…]|\.\.\.|\$\(")


def _doc_id(path: Path) -> str:
    return str(path.relative_to(ROOT))


def extract_commands(text: str) -> list[tuple[str, str]]:
    """Every quoted ``python -m repro ...`` as ``(command, context)``.

    ``context`` is ``"fence"`` for fenced-code-block lines and
    ``"inline"`` for backtick spans; prose is allowed to *name* a
    command group inline (``python -m repro report``) without that
    being an example invocation.
    """
    commands: list[tuple[str, str]] = []
    for block in _FENCE.findall(text):
        for line in block.splitlines():
            if "python -m repro" in line:
                commands.append((line, "fence"))
    remainder = _FENCE.sub("", text)
    for span in _INLINE.findall(remainder):
        if "python -m repro" in span:
            commands.append((" ".join(span.split()), "inline"))
    return commands


def parseable_args(command: str) -> list[str] | None:
    """The argv for ``build_parser`` or None if the command is illustrative."""
    if _PLACEHOLDER.search(command):
        return None
    try:
        tokens = shlex.split(command, comments=True)
    except ValueError:
        return None
    # Strip env assignments and wrappers ahead of the interpreter.
    while tokens and ("=" in tokens[0] or tokens[0] == "timeout"
                      or tokens[0].isdigit()):
        tokens = tokens[1:]
    if tokens[:3] != ["python", "-m", "repro"]:
        return None
    args = tokens[3:]
    if _PLACEHOLDER.search(" ".join(args)):
        return None
    return args


class TestQuotedCommands:
    @pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
    def test_every_quoted_cli_command_parses(self, doc: Path) -> None:
        parser = build_parser()
        failures: list[str] = []
        checked = 0
        for command, context in extract_commands(doc.read_text()):
            args = parseable_args(command)
            if args is None:
                continue
            if context == "inline" and len(args) <= 1 \
                    and not any(arg.startswith("-") for arg in args):
                continue  # prose naming a command (group), not an example
            checked += 1
            try:
                parser.parse_args(args)
            except SystemExit:
                failures.append(command.strip())
        assert not failures, (
            f"{doc.name}: commands the CLI rejects: {failures}")
        # README and EXPERIMENTS must actually contain runnable examples;
        # a regex regression that extracts nothing would pass vacuously.
        if doc.name in ("README.md",):
            assert checked >= 5

    def test_extraction_sees_fenced_and_inline_commands(self) -> None:
        text = ("Run `python -m repro sweep` first.\n\n"
                "```bash\nPYTHONPATH=src python -m repro bench --quick\n```\n")
        commands = extract_commands(text)
        assert ("python -m repro sweep", "inline") in commands
        assert any("bench" in command for command, _ in commands)
        assert parseable_args("PYTHONPATH=src python -m repro bench --quick") \
            == ["bench", "--quick"]
        assert parseable_args("python -m repro soak --case <i>") is None


class TestLinks:
    @pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
    def test_markdown_links_resolve(self, doc: Path) -> None:
        missing: list[str] = []
        for target in _LINK.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not (doc.parent / path).exists():
                missing.append(target)
        assert not missing, f"{doc.name}: dead links: {missing}"

    @pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
    def test_backticked_repo_paths_exist(self, doc: Path) -> None:
        text = _FENCE.sub("", doc.read_text())
        missing: list[str] = []
        for span in _INLINE.findall(text):
            span = " ".join(span.split())
            if _PATH_REF.match(span) and not (ROOT / span).exists():
                missing.append(span)
        assert not missing, f"{doc.name}: stale file references: {missing}"
