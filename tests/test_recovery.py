"""Crash-recovery: process lifecycle, recovering Omega, persisted consensus.

Covers the recovery extension end to end — the :meth:`Process.recover`
lifecycle edge cases, stale-incarnation message discard, the
crash-recovery Omega's persistence discipline, consensus safety across
recoveries (including the control experiment showing what goes wrong
*without* stable storage), the recovery soak campaign sampler, and the
``recoveries`` block of ``repro-report/v1``.
"""

from __future__ import annotations

import pytest

from conftest import Probe, Recorder

from repro.core import OmegaConfig, analyze_omega_run
from repro.core.recovering import RecoveringOmega
from repro.core.registry import algorithm_class
from repro.harness.soak import (
    recovery_control_case,
    run_soak_case,
    sample_recovery_case,
)
from repro.obs import validate_report
from repro.obs.report import RunRecorder, RunReport
from repro.obs.verdict import Verdict
from repro.sim import Cluster, FaultPlan, Simulation
from repro.sim.network import Network
from repro.sim.process import ProcessError
from repro.sim.topology import all_timely_links, apply_links, source_links
from repro.consensus import ConsensusSystem, WorkloadSpec, check_log, \
    check_single_decree


# ----------------------------------------------------------------------
# Process lifecycle edge cases (satellite: lifecycle tests)
# ----------------------------------------------------------------------

class TestLifecycle:
    def test_recover_without_crash_raises(self, sim: Simulation,
                                          network: Network) -> None:
        p = Recorder(0, sim, network)
        p.start()
        with pytest.raises(ProcessError, match="is up"):
            p.recover()

    def test_double_recover_raises(self, sim: Simulation,
                                   network: Network) -> None:
        p = Recorder(0, sim, network)
        p.start()
        p.crash()
        p.recover()
        with pytest.raises(ProcessError, match="incarnation 1"):
            p.recover()

    def test_incarnations_monotone_across_bounces(self, sim: Simulation,
                                                  network: Network) -> None:
        p = Recorder(0, sim, network)
        p.start()
        seen = [p.incarnation]
        for _ in range(3):
            p.crash()
            p.recover()
            seen.append(p.incarnation)
        assert seen == [0, 1, 2, 3]

    def test_crash_clears_paused(self, sim: Simulation,
                                 network: Network) -> None:
        p = Recorder(0, sim, network)
        p.start()
        p.pause()
        assert p.paused
        p.crash()
        assert not p.paused
        # A held message from pause time must not replay into the new
        # incarnation.
        p.recover()
        assert not p.paused
        assert p.received == []

    def test_pause_resume_noop_while_down(self, sim: Simulation,
                                          network: Network) -> None:
        p = Recorder(0, sim, network)
        p.start()
        p.crash()
        p.pause()
        assert not p.paused
        p.resume()  # no-op, no raise
        assert not p.paused

    def test_start_noop_while_down(self, sim: Simulation,
                                   network: Network) -> None:
        starts: list[int] = []

        class Once(Recorder):
            def on_start(self) -> None:
                super().on_start()
                starts.append(1)

        p = Once(0, sim, network)
        p.start()
        p.crash()
        p.start()
        assert starts == [1]

    def test_timers_noop_while_down(self, sim: Simulation,
                                    network: Network) -> None:
        p = Recorder(0, sim, network)
        p.start()
        p.crash()
        p.set_timer("t", 1.0)
        p.set_periodic("p", 1.0)
        assert not p.has_timer("t")
        assert not p.has_timer("p")
        sim.run_until(5.0)
        assert p.timer_fires == []

    def test_on_recover_hook_runs(self, sim: Simulation,
                                  network: Network) -> None:
        hooks: list[int] = []

        class Hooked(Recorder):
            def on_recover(self) -> None:
                hooks.append(self.incarnation)

        p = Hooked(0, sim, network)
        p.start()
        p.crash()
        p.recover()
        assert hooks == [1]

    def test_stale_incarnation_messages_discarded(self, sim: Simulation,
                                                  network: Network) -> None:
        a = Recorder(0, sim, network)
        b = Recorder(1, sim, network)
        a.start()
        b.start()
        a.send(1, Probe(0, payload=1))  # incarnation 0, in flight
        a.crash()
        a.recover()  # incarnation 1 before the delivery lands
        sim.run_until(1.0)
        assert b.received == []
        a.send(1, Probe(0, payload=2))  # the new incarnation's sends pass
        sim.run_until(2.0)
        assert [m.payload for _t, m in b.received] == [2]


# ----------------------------------------------------------------------
# Recovery-aware Omega
# ----------------------------------------------------------------------

def _recovering_cluster(n: int = 3, seed: int = 0) -> Cluster:
    config = OmegaConfig(eta=1.0)
    return Cluster.build(
        n, lambda pid, sim, net: RecoveringOmega(pid, sim, net, config),
        links=all_timely_links(n), seed=seed)


class TestRecoveringOmega:
    def test_registered_under_crash_recovery(self) -> None:
        assert algorithm_class("crash-recovery") is RecoveringOmega

    def test_bounced_process_rejoins_and_omega_holds(self) -> None:
        cluster = _recovering_cluster()
        FaultPlan.crashes_at((5.0, 0, 20.0)).schedule(cluster)
        cluster.start_all()
        cluster.run_until(120.0)
        report = analyze_omega_run(cluster)
        assert report.omega_holds
        assert cluster.process(0).incarnation == 1
        assert cluster.process(0).epoch == 1

    def test_recovery_penalty_worsens_priority(self) -> None:
        cluster = _recovering_cluster()
        process = cluster.process(0)
        cluster.start_all()
        cluster.run_until(5.0)
        before = (process.counter, process.phase)
        cluster.crash(0)
        cluster.sim.run_until(6.0)
        cluster.recover(0)
        cluster.run_until(7.0)
        assert process.counter >= before[0] + 1
        assert process.phase >= before[1] + 1

    def test_counters_survive_restart_durably(self) -> None:
        # The durable epoch is monotone across bounces even though each
        # bounce resets all volatile state.
        cluster = _recovering_cluster()
        cluster.start_all()
        epochs = []
        for round_number in range(3):
            cluster.run_until(5.0 * (round_number + 1))
            cluster.crash(0)
            cluster.recover(0)
            epochs.append(cluster.process(0).epoch)
        assert epochs == [1, 2, 3]

    def test_corrupt_counter_restarts_from_default(self) -> None:
        cluster = _recovering_cluster()
        cluster.start_all()
        cluster.run_until(5.0)
        process = cluster.process(0)
        cluster.crash(0)
        process.storage.corrupt("counter")
        cluster.recover(0)
        assert process.corrupt_reads == 1
        assert process.counter >= 1  # default 0 + recovery penalty


# ----------------------------------------------------------------------
# Persisted consensus across recoveries
# ----------------------------------------------------------------------

def _single_decree(n: int = 3, persist: bool = True,
                   seed: int = 3) -> ConsensusSystem:
    return ConsensusSystem.build_single_decree(
        n, lambda: source_links(n, 0), omega_name="crash-recovery",
        proposals=[f"v{pid}" for pid in range(n)], seed=seed,
        persist=persist)


class TestPersistedConsensus:
    def test_acceptor_remembers_promise_across_bounce(self) -> None:
        system = _single_decree()
        FaultPlan.crashes_at((4.0, 1, 12.0)).schedule(system)
        system.start_all()
        system.run_until(60.0)
        report = check_single_decree(system)
        assert report.agreement
        assert len(report.decided) == 3
        agreement = system.node(1).agreement
        assert agreement.incarnation == 1
        assert agreement.storage.get("promised") is not None

    def test_log_replica_rejoins_after_bounce(self) -> None:
        system = ConsensusSystem.build_replicated_log(
            3, lambda: source_links(3, 0), omega_name="crash-recovery",
            seed=5, persist=True)
        workload = WorkloadSpec(count=8, period=1.0, start=1.0).build(system)
        FaultPlan.crashes_at((3.0, 2, 10.0)).schedule(system)
        system.start_all()
        system.run_until(120.0)
        report = check_log(system, set(workload.submitted))
        assert report.agreement and report.validity
        assert workload.done()
        replica = system.node(2).agreement
        assert replica.commit_index >= 7

    def test_recovered_acceptor_state_loaded_from_storage(self) -> None:
        system = _single_decree()
        system.start_all()
        system.run_until(20.0)  # decided by now
        agreement = system.node(1).agreement
        durable_decision = agreement.storage.get("decision")
        system.crash(1)
        system.recover(1)
        # Reloaded synchronously at recover time, before any message.
        assert agreement.decision == durable_decision[0]

    def test_unpersisted_control_case_violates_agreement(self) -> None:
        ok, detail = recovery_control_case(persist=False)
        assert not ok
        assert "decisions" in detail

    def test_persisted_control_case_holds(self) -> None:
        ok, detail = recovery_control_case(persist=True)
        assert ok


# ----------------------------------------------------------------------
# Recovery soak campaign
# ----------------------------------------------------------------------

class TestRecoveryCampaign:
    def test_sampler_is_deterministic(self) -> None:
        a = sample_recovery_case(7, 3)
        b = sample_recovery_case(7, 3)
        assert a == b
        assert a.recovery
        assert a.algorithm == "crash-recovery"
        assert "recovery" in a.describe()

    def test_sampler_covers_all_stacks(self) -> None:
        kinds = {sample_recovery_case(7, index).kind for index in range(12)}
        assert kinds == {"omega", "single-decree", "log"}

    def test_sampled_plans_include_recoveries(self) -> None:
        plans = [sample_recovery_case(7, index).fault_plan()
                 for index in range(8)]
        assert any("recover" in plan.to_repro() for plan in plans)

    def test_one_sampled_case_passes(self) -> None:
        result = run_soak_case(sample_recovery_case(7, 0))
        assert result.status == "ok"
        assert "storage[" in result.detail


# ----------------------------------------------------------------------
# repro-report/v1: the recoveries block
# ----------------------------------------------------------------------

def _report_with(recorder: RunRecorder) -> dict:
    sim = Simulation(seed=0)
    network = Network(sim)
    apply_links(network, all_timely_links(2))
    network.hub.attach(recorder)
    return RunReport("scenario", "t", {}, Verdict.passed(), sim,
                     [("cluster", network)]).to_json()


class TestReportRecoveries:
    def test_block_shape_and_validation(self) -> None:
        recorder = RunRecorder()
        recorder.recovers = [(4.0, 1, 1), (9.0, 1, 2), (6.0, 0, 1)]
        recorder.syncs_ok = 5
        recorder.syncs_failed = 1
        document = _report_with(recorder)
        assert validate_report(document) == []
        block = document["recoveries"]
        assert block["count"] == 3
        assert [e["pid"] for e in block["events"]] == [1, 0, 1]
        assert block["timelines"]["1"][-1]["incarnation"] == 2
        assert block["storage"] == {"syncs_ok": 5, "syncs_failed": 1}

    def test_validator_flags_bad_block(self) -> None:
        document = _report_with(RunRecorder())
        document["recoveries"]["count"] = 9
        problems = validate_report(document)
        assert any("recoveries.count" in p for p in problems)
        del document["recoveries"]
        problems = validate_report(document)
        assert any("recoveries" in p for p in problems)

    def test_live_run_populates_block(self) -> None:
        cluster = _recovering_cluster()
        recorder = cluster.network.hub.attach(RunRecorder())
        FaultPlan.crashes_at((3.0, 1, 8.0)).schedule(cluster)
        cluster.start_all()
        cluster.run_until(30.0)
        document = RunReport("scenario", "t", {}, Verdict.passed(),
                             cluster.sim,
                             [("cluster", cluster.network)]).to_json()
        assert validate_report(document) == []
        block = document["recoveries"]
        assert block["count"] == 1
        assert block["events"][0]["pid"] == 1
        assert block["timelines"]["1"] == [
            {"time": 8.0, "incarnation": 1}]
        assert block["storage"]["syncs_ok"] > 0
