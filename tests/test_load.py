"""Tests for repro.load: Zipf sampling, client fleets, sharding, E19 rows.

The tentpole claims under test: a client fleet drives the (sharded)
replicated log deterministically; bounded leader queues shed instead of
growing without bound, and the retry discipline still lands every
command; batched multi-command slots preserve agreement and
exactly-once apply even under crash+recover faults.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus import (
    ConsensusConfig,
    ConsensusSystem,
    ShardedLog,
    WorkloadSpec,
    check_log,
)
from repro.load import LoadOutcome, LoadSpec, ZipfSampler
from repro.sim import FaultPlan, LinkTimings
from repro.sim.topology import multi_source_links, source_links

FAST = LinkTimings(gst=3.0, pre_gst_delay_max=2.0)


class TestZipfSampler:
    def test_bounds_and_determinism(self) -> None:
        sampler = ZipfSampler(n=1_000_000, s=1.1)
        first = [sampler.sample(random.Random(42)) for _ in range(1)]
        again = [sampler.sample(random.Random(42)) for _ in range(1)]
        assert first == again
        rng = random.Random(7)
        draws = [sampler.sample(rng) for _ in range(2000)]
        assert all(0 <= draw < 1_000_000 for draw in draws)

    def test_skew_prefers_low_ranks(self) -> None:
        sampler = ZipfSampler(n=10_000, s=1.2)
        rng = random.Random(0)
        draws = [sampler.sample(rng) for _ in range(4000)]
        head = sum(1 for draw in draws if draw < 10)
        # Rank 0-9 carries far more than the 0.1% a uniform would give.
        assert head / len(draws) > 0.25

    def test_s_zero_is_uniform(self) -> None:
        sampler = ZipfSampler(n=100, s=0.0)
        rng = random.Random(1)
        draws = [sampler.sample(rng) for _ in range(5000)]
        assert all(0 <= draw < 100 for draw in draws)
        head = sum(1 for draw in draws if draw < 10)
        assert 0.05 < head / len(draws) < 0.2

    def test_s_one_special_case(self) -> None:
        sampler = ZipfSampler(n=1000, s=1.0)
        rng = random.Random(2)
        assert all(0 <= sampler.sample(rng) < 1000 for _ in range(500))

    def test_validation(self) -> None:
        with pytest.raises(ValueError, match="n"):
            ZipfSampler(n=0, s=1.0)
        with pytest.raises(ValueError, match="s"):
            ZipfSampler(n=10, s=-0.5)
        with pytest.raises(ValueError, match="s"):
            ZipfSampler(n=10, s=math.nan)


class TestLoadSpecValidation:
    def test_defaults_are_valid(self) -> None:
        LoadSpec()

    @pytest.mark.parametrize("field", ["rate", "think_time", "duration",
                                       "retry_period", "gst"])
    @pytest.mark.parametrize("bad", [0.0, -1.0, math.nan, math.inf])
    def test_positive_finite_fields(self, field: str, bad: float) -> None:
        with pytest.raises(ValueError, match=field):
            LoadSpec(**{field: bad})

    def test_enum_fields(self) -> None:
        with pytest.raises(ValueError, match="mode"):
            LoadSpec(mode="bursty")
        with pytest.raises(ValueError, match="arrival"):
            LoadSpec(arrival="pareto")

    def test_horizon_must_cover_offered_window(self) -> None:
        with pytest.raises(ValueError, match="horizon"):
            LoadSpec(start=5.0, duration=60.0, horizon=30.0)
        with pytest.raises(ValueError, match="horizon"):
            LoadSpec(horizon=math.nan)

    def test_cluster_shape(self) -> None:
        with pytest.raises(ValueError, match="n"):
            LoadSpec(n=1)
        with pytest.raises(ValueError, match="groups"):
            LoadSpec(groups=0)
        with pytest.raises(ValueError, match="batch_size"):
            LoadSpec(batch_size=0)
        with pytest.raises(ValueError, match="queue_limit"):
            LoadSpec(queue_limit=0)


SMALL_OPEN = dict(n=5, clients=50, keys=32, rate=8.0, start=3.0,
                  duration=12.0, horizon=60.0, seed=4)


class TestOpenLoop:
    @pytest.fixture(scope="class")
    def outcome(self) -> LoadOutcome:
        return LoadSpec(**SMALL_OPEN).run()

    def test_everything_commits(self, outcome: LoadOutcome) -> None:
        assert outcome.done
        assert outcome.issued > 0
        assert outcome.committed == outcome.issued
        assert outcome.verdict.ok

    def test_measurements_present(self, outcome: LoadOutcome) -> None:
        assert outcome.throughput_cps and outcome.throughput_cps > 0
        assert outcome.latency_p50_s and outcome.latency_p50_s > 0
        assert outcome.latency_p50_s <= outcome.latency_p95_s \
            <= outcome.latency_p99_s

    def test_json_schema(self, outcome: LoadOutcome) -> None:
        document = outcome.to_json()
        assert set(document) == {"issued", "committed", "retries", "shed",
                                 "done", "duration_s", "throughput_cps",
                                 "latency_s", "per_group", "queue"}
        assert set(document["latency_s"]) == {"p50", "p95", "p99"}
        assert set(document["queue"]) == {"shed", "max_queue_depth",
                                          "batch_sizes"}
        for row in document["per_group"]:
            assert set(row) == {"group", "submitted", "committed_entries",
                                "ok"}

    def test_deterministic_across_runs(self, outcome: LoadOutcome) -> None:
        again = LoadSpec(**SMALL_OPEN).run()
        assert again.to_json() == outcome.to_json()


class TestClosedLoop:
    def test_closed_loop_self_limits_and_drains(self) -> None:
        outcome = LoadSpec(n=5, mode="closed", clients=12, keys=16,
                           think_time=3.0, start=3.0, duration=15.0,
                           horizon=60.0, seed=2).run()
        assert outcome.done
        assert outcome.verdict.ok
        # Every client issues at least once; think time caps the rest.
        assert 12 <= outcome.issued <= 12 * 8


class TestBackpressure:
    def test_queue_fills_shed_then_retry_lands_everything(self) -> None:
        # A tiny queue against a burst: the replica must shed (bounded
        # memory), the fleet must retry, and every command must still
        # commit by the horizon.
        outcome = LoadSpec(n=5, clients=40, keys=16, rate=30.0,
                           queue_limit=4, batch_size=2, window=2,
                           start=3.0, duration=8.0, horizon=120.0,
                           seed=6).run()
        assert outcome.queue["shed"] > 0 or outcome.shed > 0
        assert outcome.done
        assert outcome.committed == outcome.issued
        assert outcome.verdict.ok

    def test_replica_submit_returns_shed_signal(self) -> None:
        config = ConsensusConfig(queue_limit=2)
        system = ConsensusSystem.build_replicated_log(
            3, lambda: multi_source_links(3, (0, 1), FAST),
            consensus_config=config, seed=0)
        replica = system.node(0).agreement
        replica.start()
        assert replica.submit("a", ("w", "a"))
        assert replica.submit("b", ("w", "b"))
        assert not replica.submit("c", ("w", "c"))  # queue full: shed
        assert replica.submit("a", ("w", "a"))  # dup of pending: accepted
        assert replica.load_stats()["shed"] == 1
        assert replica.load_stats()["max_queue_depth"] == 2


class TestShardedLoad:
    def test_four_groups_pass_per_group_checkers(self) -> None:
        outcome = LoadSpec(n=5, groups=4, clients=60, keys=64, rate=10.0,
                           start=3.0, duration=12.0, horizon=60.0,
                           seed=3).run()
        assert outcome.done
        assert len(outcome.per_group) == 4
        assert all(row["ok"] for row in outcome.per_group)
        # The hash actually spreads keys: several groups saw traffic.
        busy = [row for row in outcome.per_group if row["submitted"] > 0]
        assert len(busy) >= 2

    def test_group_of_is_stable_and_total(self) -> None:
        system = LoadSpec(n=5, groups=4).build().system
        assert isinstance(system, ShardedLog)
        for key in range(64):
            group = system.group_of(key)
            assert 0 <= group < 4
            assert system.group_of(key) == group

    def test_machine_crash_hits_every_group(self) -> None:
        system = LoadSpec(n=5, groups=2).build().system
        system.start_all()
        system.run_until(1.0)
        system.crash(3)
        assert 3 not in system.up_pids()
        for group in system.groups:
            assert group.nodes[3].agreement.crashed

    def test_compacting_groups_snapshot_under_load(self) -> None:
        outcome = LoadSpec(n=5, groups=2, compacting=True, keep_tail=8,
                           clients=40, keys=32, rate=8.0, start=3.0,
                           duration=12.0, horizon=60.0, seed=5).run()
        assert outcome.done
        assert outcome.verdict.ok


class TestBatchedSlotsProperty:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           batch_size=st.integers(min_value=2, max_value=8),
           victim=st.sampled_from([0, 2, 3]),
           crash_time=st.floats(min_value=3.0, max_value=20.0))
    @settings(max_examples=6, deadline=None)
    def test_agreement_and_exactly_once_under_crash_recover(
            self, seed: int, batch_size: int, victim: int,
            crash_time: float) -> None:
        # Batched multi-command slots must not weaken the log's safety:
        # prefix agreement and validity hold, and no command id applies
        # twice even though retries resubmit ids and a replica bounces.
        config = ConsensusConfig(batch_size=batch_size, max_batch=8)
        system = ConsensusSystem.build_replicated_log(
            4, lambda: source_links(4, 1, FAST), seed=seed,
            consensus_config=config, persist=True)
        workload = WorkloadSpec(count=14, period=0.4, start=2.0,
                                retry_period=2.0).build(system)
        FaultPlan.crashes_at(
            (crash_time, victim, crash_time + 6.0)).schedule(system)
        system.start_all()
        system.run_until(250.0)
        report = check_log(system, workload.submitted)
        assert report.agreement
        assert report.validity
        for pid in system.up_pids():
            applied = system.node(pid).agreement.applied_commands()
            assert len(applied) == len(set(applied)), \
                "a command applied more than once"
            assert set(applied) <= workload.submitted
        assert workload.done()
