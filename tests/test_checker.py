"""Unit tests for the Omega run checker."""

from __future__ import annotations

import pytest

from repro.core import analyze_omega_run, communication_report, make_factory
from repro.core.checker import CommunicationReport
from repro.core.config import OmegaConfig
from repro.core.omega import OmegaProtocol
from repro.sim import Cluster
from repro.sim.topology import all_timely_links


class Scripted(OmegaProtocol):
    """An Omega whose output history is driven by the test."""


def scripted_cluster(n: int = 3) -> Cluster:
    return Cluster.build(n, lambda pid, sim, net: Scripted(pid, sim, net),
                         links=all_timely_links(n), seed=0)


class TestAgreement:
    def test_agreement_and_correct_leader(self) -> None:
        cluster = scripted_cluster()
        cluster.start_all()
        cluster.run_until(10.0)
        for pid in cluster.pids:
            cluster.process(pid)._output(1)
        report = analyze_omega_run(cluster)
        assert report.agreement
        assert report.final_leader == 1
        assert report.leader_is_correct
        assert report.omega_holds

    def test_disagreement_detected(self) -> None:
        cluster = scripted_cluster()
        cluster.start_all()
        cluster.process(0)._output(1)
        cluster.process(1)._output(2)
        cluster.process(2)._output(2)
        report = analyze_omega_run(cluster)
        assert not report.agreement
        assert report.final_leader is None
        assert not report.omega_holds
        assert report.stabilization_time is None

    def test_crashed_leader_not_correct(self) -> None:
        cluster = scripted_cluster()
        cluster.start_all()
        cluster.run_until(5.0)
        cluster.crash(2)
        for pid in cluster.up_pids():
            cluster.process(pid)._output(2)
        report = analyze_omega_run(cluster)
        assert report.agreement
        assert report.final_leader == 2
        assert not report.leader_is_correct
        assert not report.omega_holds

    def test_crashed_processes_outputs_ignored(self) -> None:
        cluster = scripted_cluster()
        cluster.start_all()
        cluster.process(0)._output(99)  # diverges, then crashes
        cluster.crash(0)
        cluster.process(1)._output(1)
        cluster.process(2)._output(1)
        report = analyze_omega_run(cluster)
        assert report.agreement
        assert report.correct == (1, 2)

    def test_non_omega_process_rejected(self) -> None:
        from conftest import Recorder

        cluster = Cluster.build(2, lambda pid, sim, net: Recorder(pid, sim, net))
        cluster.start_all()
        with pytest.raises(TypeError):
            analyze_omega_run(cluster)


class TestStabilizationTime:
    def test_last_change_wins(self) -> None:
        cluster = scripted_cluster()
        cluster.start_all()
        cluster.run_until(4.0)
        cluster.process(0)._output(1)
        cluster.run_until(9.0)
        cluster.process(1)._output(1)
        cluster.process(2)._output(1)
        report = analyze_omega_run(cluster)
        assert report.stabilization_time == 9.0

    def test_change_counts(self) -> None:
        cluster = scripted_cluster()
        cluster.start_all()
        cluster.run_until(2.0)
        process = cluster.process(0)
        process._output(1)
        process._output(2)
        process._output(1)
        cluster.process(1)._output(1)  # already its initial output: no change
        cluster.process(2)._output(1)
        report = analyze_omega_run(cluster)
        assert report.changes_by_pid[0] == 3
        assert report.changes_by_pid[1] == 0
        assert report.changes_by_pid[2] == 1
        assert report.total_changes == 4


class TestCommunicationReport:
    def test_window_census(self) -> None:
        cluster = Cluster.build(
            3, make_factory("source", OmegaConfig()),
            links=all_timely_links(3), seed=0)
        cluster.start_all()
        cluster.run_until(30.0)
        comm = communication_report(cluster, window=10.0)
        assert comm.window_end == 30.0
        assert comm.window_start == 20.0
        assert comm.messages > 0
        assert comm.senders <= {0, 1, 2}

    def test_efficiency_predicate(self) -> None:
        report = CommunicationReport(0.0, 10.0, frozenset({2}),
                                     frozenset({(2, 0), (2, 1)}), 40)
        assert report.is_communication_efficient(2)
        assert not report.is_communication_efficient(0)
        assert not report.is_communication_efficient(None)

    def test_window_must_be_positive(self) -> None:
        cluster = scripted_cluster()
        with pytest.raises(ValueError):
            communication_report(cluster, window=0.0)
