"""Behavioural tests for the ◇f-source Omega (R3) and its lower bound (R4)."""

from __future__ import annotations

import pytest

from repro.core import FsAlive, Suspect, analyze_omega_run, make_factory
from repro.core.config import OmegaConfig
from repro.core.f_source import FSourceOmega
from repro.sim import Cluster, CrashPlan, LinkTimings
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.sim.topology import f_source_links


def build(n: int = 5, f: int = 2, source: int = 2,
          targets: tuple[int, ...] = (0, 4), seed: int = 1,
          gst: float = 4.0, outages: bool = False,
          quorum_override: int | None = None) -> Cluster:
    timings = LinkTimings(gst=gst,
                          fair_outage_period=15.0 if outages else 0.0,
                          fair_outage_growth=4.0 if outages else 0.0)
    return Cluster.build(
        n, make_factory("f-source", OmegaConfig(), n=n, f=f,
                        quorum_override=quorum_override),
        links=f_source_links(n, source, targets, timings), seed=seed)


class TestConstruction:
    def make(self, **kwargs) -> FSourceOmega:  # noqa: ANN003
        sim = Simulation()
        network = Network(sim)
        return FSourceOmega(0, sim, network, **kwargs)

    def test_quorum_is_n_minus_f(self) -> None:
        proto = self.make(n=7, f=2)
        assert proto.quorum == 5

    def test_quorum_override(self) -> None:
        proto = self.make(n=7, f=2, quorum_override=3)
        assert proto.quorum == 3

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            self.make(n=1, f=1)
        with pytest.raises(ValueError):
            self.make(n=5, f=0)
        with pytest.raises(ValueError):
            self.make(n=5, f=5)


class TestSuspicionQuorum:
    def build_direct(self, n: int = 4, f: int = 1) -> FSourceOmega:
        sim = Simulation()
        network = Network(sim)
        protos = [FSourceOmega(pid, sim, network, n=n, f=f)
                  for pid in range(n)]
        for proto in protos:
            proto.start()
        return protos[0]

    def test_counter_advances_only_at_quorum(self) -> None:
        proto = self.build_direct(n=4, f=1)  # quorum 3
        proto.deliver(Suspect(1, target=3, epoch=0))
        assert proto.counter_of(3) == 0
        proto.deliver(Suspect(2, target=3, epoch=0))
        assert proto.counter_of(3) == 0
        # Duplicate suspector must not count twice.
        proto.deliver(Suspect(2, target=3, epoch=0))
        assert proto.counter_of(3) == 0
        proto.deliver(Suspect(3, target=3, epoch=0))
        assert proto.counter_of(3) == 1

    def test_stale_epoch_suspicions_ignored(self) -> None:
        proto = self.build_direct(n=4, f=1)
        proto.counters[3] = 5
        proto.deliver(Suspect(1, target=3, epoch=2))
        proto.deliver(Suspect(2, target=3, epoch=2))
        proto.deliver(Suspect(0, target=3, epoch=2))
        assert proto.counter_of(3) == 5

    def test_ahead_epoch_adopted_as_gossip(self) -> None:
        proto = self.build_direct(n=4, f=1)
        proto.deliver(Suspect(1, target=3, epoch=9))
        assert proto.counter_of(3) == 9

    def test_counters_merge_componentwise_max(self) -> None:
        proto = self.build_direct(n=4, f=1)
        proto.counters[1] = 4
        proto.deliver(FsAlive(2, counters=(0, 2, 7, 1)))
        assert proto.counters == [0, 4, 7, 1]

    def test_output_is_minimum_priority(self) -> None:
        proto = self.build_direct(n=4, f=1)
        proto.deliver(FsAlive(2, counters=(5, 3, 3, 4)))
        assert proto.leader() == 1, "min (counter, id) wins"


class TestConvergence:
    def test_converges_with_exactly_f_timely_links(self) -> None:
        cluster = build()
        cluster.start_all()
        cluster.run_until(400.0)
        report = analyze_omega_run(cluster)
        assert report.omega_holds

    def test_source_counter_bounded(self) -> None:
        cluster = build(source=2, targets=(0, 4), f=2)
        cluster.start_all()
        cluster.run_until(300.0)
        mid = [cluster.process(p).counter_of(2) for p in cluster.pids]
        cluster.run_until(500.0)
        end = [cluster.process(p).counter_of(2) for p in cluster.pids]
        assert mid == end, "the ◇f-source's counter must freeze"

    def test_crashed_process_counter_grows_forever(self) -> None:
        cluster = build()
        CrashPlan.crash_at((20.0, 1)).schedule(cluster)
        cluster.start_all()
        cluster.run_until(200.0)
        mid = cluster.process(0).counter_of(1)
        cluster.run_until(500.0)
        end = cluster.process(0).counter_of(1)
        assert end > mid, "silent processes keep accruing confirmed suspicions"

    def test_tolerates_crash_of_timely_target(self) -> None:
        cluster = build(source=2, targets=(0, 4), f=2)
        CrashPlan.crash_at((20.0, 0), (30.0, 4)).schedule(cluster)
        cluster.start_all()
        cluster.run_until(500.0)
        report = analyze_omega_run(cluster)
        assert report.omega_holds
        assert report.final_leader in {1, 2, 3}


class TestLowerBound:
    """R4: with only f-1 timely links the would-be source is not safe."""

    def test_sub_threshold_source_counter_grows(self) -> None:
        # f = 2 but only ONE timely output link, and fair-lossy outages
        # that grow over time (the model's unbounded silences): the n - f
        # processes behind bad links meet the quorum forever.
        grown = build(n=5, f=2, source=2, targets=(0,),
                      outages=True)
        grown.start_all()
        grown.run_until(300.0)
        mid = grown.process(0).counter_of(2)
        grown.run_until(600.0)
        end = grown.process(0).counter_of(2)
        assert end > mid, "with an ◇(f-1)-source the counter keeps growing"

    def test_proper_f_source_contrast(self) -> None:
        # Same adversarial outages but the full f timely links: bounded.
        proper = build(n=5, f=2, source=2, targets=(0, 4),
                       outages=True)
        proper.start_all()
        proper.run_until(300.0)
        mid = proper.process(0).counter_of(2)
        proper.run_until(600.0)
        end = proper.process(0).counter_of(2)
        assert end == mid

    def test_quorum_ablation_too_small_quorum_hurts_source(self) -> None:
        # With quorum n - f - 1 the source's counter grows even with all
        # f timely links in place — the constant n - f is tight.
        cluster = build(n=5, f=2, source=2, targets=(0, 4),
                        outages=True, quorum_override=2)
        cluster.start_all()
        cluster.run_until(300.0)
        mid = cluster.process(0).counter_of(2)
        cluster.run_until(600.0)
        end = cluster.process(0).counter_of(2)
        assert end > mid
