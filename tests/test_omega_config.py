"""Unit tests for Omega configuration and adaptive timeouts."""

from __future__ import annotations

import pytest

from repro.core.config import AdaptiveTimeouts, OmegaConfig


class TestOmegaConfigValidation:
    def test_defaults_are_valid(self) -> None:
        config = OmegaConfig()
        assert config.eta > 0
        assert config.initial_timeout > config.eta

    def test_eta_positive(self) -> None:
        with pytest.raises(ValueError):
            OmegaConfig(eta=0.0)

    def test_timeout_must_exceed_eta(self) -> None:
        with pytest.raises(ValueError):
            OmegaConfig(eta=1.0, initial_timeout=1.0)

    def test_growth_policy_names(self) -> None:
        with pytest.raises(ValueError):
            OmegaConfig(growth_policy="exponential-ish")

    def test_growth_parameters(self) -> None:
        with pytest.raises(ValueError):
            OmegaConfig(growth_step=0.0)
        with pytest.raises(ValueError):
            OmegaConfig(growth_factor=1.0)


class TestAdaptiveTimeouts:
    def test_initial_value(self) -> None:
        timeouts = AdaptiveTimeouts(OmegaConfig(initial_timeout=2.0))
        assert timeouts.get(3) == 2.0

    def test_additive_growth(self) -> None:
        timeouts = AdaptiveTimeouts(
            OmegaConfig(initial_timeout=2.0, growth_policy="additive",
                        growth_step=0.5))
        assert timeouts.grow(1) == 2.5
        assert timeouts.grow(1) == 3.0
        assert timeouts.get(2) == 2.0, "peers are independent"

    def test_multiplicative_growth(self) -> None:
        timeouts = AdaptiveTimeouts(
            OmegaConfig(initial_timeout=2.0, growth_policy="multiplicative",
                        growth_factor=2.0))
        assert timeouts.grow(1) == 4.0
        assert timeouts.grow(1) == 8.0

    def test_growth_is_unbounded(self) -> None:
        timeouts = AdaptiveTimeouts(OmegaConfig())
        for _ in range(1000):
            timeouts.grow(0)
        assert timeouts.get(0) > 100.0

    def test_raise_to_floor(self) -> None:
        timeouts = AdaptiveTimeouts(OmegaConfig(initial_timeout=2.0))
        assert timeouts.raise_to(1, 5.0) == 5.0
        assert timeouts.raise_to(1, 3.0) == 5.0, "never lowers"
        assert timeouts.get(1) == 5.0
