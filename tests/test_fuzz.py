"""Tests for the model-aware scenario fuzzer."""

from __future__ import annotations

import random

import pytest

from repro.harness.fuzz import FuzzCase, fuzz, run_case, sample_case
from repro.sim.nemesis import model_violations


class TestSampling:
    def test_cases_are_reproducible(self) -> None:
        first = [sample_case(random.Random(7), i) for i in range(10)]
        second = [sample_case(random.Random(7), i) for i in range(10)]
        assert first == second

    def test_plans_are_in_model(self) -> None:
        # The nemesis sampler carries the old guarantees (source never
        # crashes, crash count below a majority, disturbances heal) and
        # model_violations is the oracle for all of them at once.
        rng = random.Random(1)
        for index in range(200):
            case = sample_case(rng, index)
            assert model_violations(case.fault_plan(), case.envelope()) == []

    def test_source_never_crashes(self) -> None:
        rng = random.Random(2)
        for index in range(200):
            case = sample_case(rng, index)
            assert case.source not in case.fault_plan().crashed_pids

    def test_crashes_stay_below_majority(self) -> None:
        rng = random.Random(3)
        for index in range(200):
            case = sample_case(rng, index)
            assert len(case.fault_plan().crashed_pids) <= (case.n - 1) // 2

    def test_describe_is_one_line(self) -> None:
        case = sample_case(random.Random(4), 0)
        text = case.describe()
        assert "\n" not in text
        assert f"n={case.n}" in text

    def test_plan_round_trips_through_describe_field(self) -> None:
        rng = random.Random(6)
        for index in range(50):
            case = sample_case(rng, index)
            assert case.fault_plan().to_repro() == case.plan


class TestExecution:
    def test_single_case_runs_and_reports(self) -> None:
        case = sample_case(random.Random(5), 0)
        result = run_case(case)
        assert result.ok, f"{case.describe()} -- {result.detail}"
        assert result.detail

    def test_fuzz_budget(self) -> None:
        results = fuzz(6, fuzz_seed=11, stop_on_failure=False)
        assert len(results) == 6
        failures = [r for r in results if not r.ok]
        assert not failures, "\n".join(
            f"{r.case.describe()} -- {r.detail}" for r in failures)

    def test_fuzz_validation(self) -> None:
        with pytest.raises(ValueError):
            fuzz(0)

    def test_explicit_case_execution(self) -> None:
        # A handcrafted worst legal single-decree world: two early
        # crashes and a healing partition isolating pid 4 with the
        # source on the majority side, written as a plan repro string.
        case = FuzzCase(index=0, kind="single-decree",
                        algorithm="comm-efficient", n=5, source=2,
                        seed=99, horizon=400.0, fair_loss=0.5, gst=8.0,
                        plan="crash(t=2.0,pid=0) "
                             "partition(start=10.0,end=30.0,"
                             "groups=1.2.3|4)")
        result = run_case(case)
        assert result.ok, result.detail
