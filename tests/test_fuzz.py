"""Tests for the model-aware scenario fuzzer."""

from __future__ import annotations

import random

import pytest

from repro.harness.fuzz import FuzzCase, fuzz, run_case, sample_case


class TestSampling:
    def test_cases_are_reproducible(self) -> None:
        first = [sample_case(random.Random(7), i) for i in range(10)]
        second = [sample_case(random.Random(7), i) for i in range(10)]
        assert first == second

    def test_source_never_crashes(self) -> None:
        rng = random.Random(1)
        for index in range(200):
            case = sample_case(rng, index)
            crashed = {pid for _, pid in case.crashes}
            assert case.source not in crashed

    def test_crashes_stay_below_majority(self) -> None:
        rng = random.Random(2)
        for index in range(200):
            case = sample_case(rng, index)
            assert len(case.crashes) <= (case.n - 1) // 2

    def test_partitions_heal_before_horizon(self) -> None:
        rng = random.Random(3)
        for index in range(200):
            case = sample_case(rng, index)
            if case.partition is not None:
                start, end, group = case.partition
                assert end < case.horizon / 2
                assert case.source in group, \
                    "the majority side must retain the source"

    def test_describe_is_one_line(self) -> None:
        case = sample_case(random.Random(4), 0)
        text = case.describe()
        assert "\n" not in text
        assert f"n={case.n}" in text


class TestExecution:
    def test_single_case_runs_and_reports(self) -> None:
        case = sample_case(random.Random(5), 0)
        result = run_case(case)
        assert result.ok, f"{case.describe()} -- {result.detail}"
        assert result.detail

    def test_fuzz_budget(self) -> None:
        results = fuzz(6, fuzz_seed=11, stop_on_failure=False)
        assert len(results) == 6
        failures = [r for r in results if not r.ok]
        assert not failures, "\n".join(
            f"{r.case.describe()} -- {r.detail}" for r in failures)

    def test_fuzz_validation(self) -> None:
        with pytest.raises(ValueError):
            fuzz(0)

    def test_explicit_case_execution(self) -> None:
        # A handcrafted worst legal single-decree world.
        case = FuzzCase(index=0, kind="single-decree",
                        algorithm="comm-efficient", n=5, source=2,
                        seed=99, horizon=400.0, fair_loss=0.5, gst=8.0,
                        crashes=((2.0, 0), (4.0, 4)),
                        partition=(10.0, 30.0, (0, 1, 2, 3)))
        result = run_case(case)
        assert result.ok, result.detail
