"""Unit tests for cluster assembly."""

from __future__ import annotations

import pytest

from conftest import Probe, Recorder

from repro.sim.cluster import Cluster


def recorder_factory(pid, sim, net):  # noqa: ANN001, ANN201
    return Recorder(pid, sim, net)


class TestBuild:
    def test_builds_n_processes(self) -> None:
        cluster = Cluster.build(5, recorder_factory)
        assert cluster.n == 5
        assert cluster.pids == [0, 1, 2, 3, 4]

    def test_needs_at_least_two(self) -> None:
        with pytest.raises(ValueError):
            Cluster.build(1, recorder_factory)

    def test_trace_flag(self) -> None:
        traced = Cluster.build(2, recorder_factory, trace=True)
        untraced = Cluster.build(2, recorder_factory, trace=False)
        assert traced.trace.enabled
        assert not untraced.trace.enabled


class TestStart:
    def test_start_all_immediate(self) -> None:
        cluster = Cluster.build(3, recorder_factory)
        cluster.start_all()
        assert all(cluster.process(pid).started for pid in cluster.pids)

    def test_staggered_start(self) -> None:
        cluster = Cluster.build(3, recorder_factory)
        cluster.start_all(stagger=1.0)
        assert not cluster.process(2).started
        cluster.run_until(0.0)
        assert cluster.process(0).started
        assert not cluster.process(1).started
        cluster.run_until(2.5)
        assert all(cluster.process(pid).started for pid in cluster.pids)


class TestCrashes:
    def test_crash_and_census(self) -> None:
        cluster = Cluster.build(4, recorder_factory)
        cluster.start_all()
        cluster.crash(1)
        cluster.crash_many([2, 3])
        assert cluster.up_pids() == [0]
        assert cluster.crashed_pids() == [1, 2, 3]


class TestRunAndMetrics:
    def test_messages_flow_between_processes(self) -> None:
        cluster = Cluster.build(3, recorder_factory, seed=4)
        cluster.start_all()
        cluster.process(0).broadcast(Probe(0))
        cluster.run_for(1.0)
        assert len(cluster.process(1).received) == 1
        assert cluster.metrics.total_sent == 2

    def test_seed_changes_timing(self) -> None:
        def delays(seed: int) -> list[float]:
            cluster = Cluster.build(2, recorder_factory, seed=seed, trace=True)
            cluster.start_all()
            cluster.process(0).send(1, Probe(0))
            cluster.run_for(1.0)
            return [d.delay for d in cluster.trace.deliveries()]

        assert delays(1) != delays(2)
        assert delays(3) == delays(3)
