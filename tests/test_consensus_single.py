"""Behavioural tests for single-decree consensus."""

from __future__ import annotations

import pytest

from repro.consensus import (
    ConsensusConfig,
    ConsensusSystem,
    SingleDecreeConsensus,
    check_single_decree,
)
from repro.consensus.messages import Ballot, Prepare, Propose
from repro.sim import CrashPlan, LinkTimings
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.sim.topology import all_timely_links, source_links


def links_factory(n: int = 5, source: int = 1, gst: float = 3.0):  # noqa: ANN201
    timings = LinkTimings(gst=gst)
    return lambda: source_links(n, source, timings)


def build(n: int = 5, seed: int = 1, omega: str = "comm-efficient",
          **kwargs) -> ConsensusSystem:  # noqa: ANN003
    return ConsensusSystem.build_single_decree(
        n, links_factory(n), proposals=[f"v{i}" for i in range(n)],
        omega_name=omega, seed=seed, **kwargs)


class TestHappyPath:
    def test_all_decide_one_valid_value(self) -> None:
        system = build()
        system.start_all()
        system.run_until(80.0)
        report = check_single_decree(system)
        assert report.agreement and report.validity
        assert report.all_correct_decided
        assert report.latest_decision is not None

    def test_works_with_every_omega_variant(self) -> None:
        for name in ("all-timely", "source", "comm-efficient"):
            system = build(omega=name, seed=3)
            system.start_all()
            system.run_until(120.0)
            report = check_single_decree(system)
            assert report.agreement and report.validity, name
            assert report.all_correct_decided, name

    def test_f_source_omega_drives_consensus(self) -> None:
        from repro.sim.topology import f_source_links

        timings = LinkTimings(gst=3.0)
        system = ConsensusSystem.build_single_decree(
            5, lambda: f_source_links(5, 1, [0, 2], timings),
            proposals=list("abcde"), omega_name="f-source", f=2, seed=4)
        system.start_all()
        system.run_until(400.0)
        report = check_single_decree(system)
        assert report.agreement and report.validity
        assert report.all_correct_decided


class TestCrashTolerance:
    def test_minority_crash_before_start_of_agreement(self) -> None:
        system = build()
        CrashPlan.crash_at((0.5, 0), (0.7, 4)).schedule(system)
        system.start_all()
        system.run_until(150.0)
        report = check_single_decree(system)
        assert report.agreement and report.validity
        assert report.all_correct_decided

    def test_leader_crash_mid_protocol(self) -> None:
        # Crash whoever leads at t=6 (around the first ballots).
        system = build(seed=7)
        system.start_all()
        system.run_until(6.0)
        leader = system.node(2).omega.leader()
        if leader in system.up_pids():
            system.crash(leader)
        system.run_until(300.0)
        report = check_single_decree(system)
        assert report.agreement and report.validity
        # All correct processes decided despite losing the first leader.
        assert report.all_correct_decided

    def test_majority_crash_halts_but_stays_safe(self) -> None:
        system = build()
        CrashPlan.crash_at((0.2, 0), (0.3, 2), (0.4, 4)).schedule(system)
        system.start_all()
        system.run_until(200.0)
        report = check_single_decree(system)
        # With only 2 of 5 alive nothing can be decided...
        assert not report.decided or report.agreement
        # ...and in particular safety was never violated.
        assert report.validity


class TestQuorumIntersectionUnit:
    """Acceptor-level unit checks with a stubbed leader oracle."""

    def build_pair(self) -> tuple[Simulation, SingleDecreeConsensus]:
        sim = Simulation()
        network = Network(sim)
        a = SingleDecreeConsensus(0, sim, network, n=3, proposal="A",
                                  leader_of=lambda: 99)  # never proposes
        SingleDecreeConsensus(1, sim, network, n=3, proposal="B",
                              leader_of=lambda: 99)
        a.start()
        network.process(1).start()
        return sim, a

    def test_acceptor_promises_monotonically(self) -> None:
        _, acceptor = self.build_pair()
        acceptor.deliver(Prepare(1, Ballot(5, 1), 0))
        assert acceptor.promised == Ballot(5, 1)
        acceptor.deliver(Prepare(1, Ballot(3, 1), 0))
        assert acceptor.promised == Ballot(5, 1), "lower prepare ignored"

    def test_acceptor_rejects_stale_propose(self) -> None:
        _, acceptor = self.build_pair()
        acceptor.deliver(Prepare(1, Ballot(5, 1), 0))
        acceptor.deliver(Propose(1, Ballot(4, 1), 0, "X", -1))
        assert acceptor.accepted is None

    def test_acceptor_accepts_at_or_above_promise(self) -> None:
        _, acceptor = self.build_pair()
        acceptor.deliver(Prepare(1, Ballot(5, 1), 0))
        acceptor.deliver(Propose(1, Ballot(5, 1), 0, "X", -1))
        assert acceptor.accepted == (Ballot(5, 1), "X")

    def test_duplicate_propose_is_idempotent(self) -> None:
        _, acceptor = self.build_pair()
        message = Propose(1, Ballot(5, 1), 0, "X", -1)
        acceptor.deliver(message)
        acceptor.deliver(message)
        assert acceptor.accepted == (Ballot(5, 1), "X")

    def test_validation(self) -> None:
        sim = Simulation()
        network = Network(sim)
        with pytest.raises(ValueError):
            SingleDecreeConsensus(0, sim, network, n=1, proposal="A",
                                  leader_of=lambda: 0)


class TestDeterminism:
    def test_same_seed_same_decision(self) -> None:
        def decided(seed: int):  # noqa: ANN202
            system = build(seed=seed)
            system.start_all()
            system.run_until(80.0)
            return check_single_decree(system).decided

        assert decided(11) == decided(11)


class TestRetransmissionUnderLoss:
    def test_decides_despite_heavy_fair_loss(self) -> None:
        timings = LinkTimings(gst=3.0, fair_loss=0.7,
                              fair_max_consecutive=6)
        system = ConsensusSystem.build_single_decree(
            5, lambda: source_links(5, 1, timings),
            proposals=list("abcde"), seed=5,
            consensus_config=ConsensusConfig(tick=0.5))
        system.start_all()
        system.run_until(300.0)
        report = check_single_decree(system)
        assert report.agreement and report.validity
        assert report.all_correct_decided
