"""Tests for the Omega QoS metrics."""

from __future__ import annotations

import pytest

from repro.core import analyze_omega_run, measure_qos, output_at
from repro.core.omega import OmegaProtocol
from repro.harness import OmegaScenario
from repro.sim import Cluster, LinkTimings
from repro.sim.topology import all_timely_links


class Scripted(OmegaProtocol):
    """Output history driven directly by the test."""


def scripted_cluster(n: int = 3) -> Cluster:
    return Cluster.build(n, lambda pid, sim, net: Scripted(pid, sim, net),
                         links=all_timely_links(n), seed=0, trace=True)


class TestOutputAt:
    def test_before_start_is_none(self) -> None:
        assert output_at([(1.0, 5)], 0.5) is None

    def test_piecewise_lookup(self) -> None:
        history = [(0.0, 0), (2.0, 1), (5.0, 2)]
        assert output_at(history, 0.0) == 0
        assert output_at(history, 1.999) == 0
        assert output_at(history, 2.0) == 1
        assert output_at(history, 10.0) == 2

    def test_empty_history(self) -> None:
        assert output_at([], 1.0) is None


class TestAgreementFractions:
    def test_full_agreement_run(self) -> None:
        cluster = scripted_cluster()
        cluster.start_all()
        for pid in cluster.pids:
            cluster.process(pid)._output(1)
        cluster.run_until(10.0)
        qos = measure_qos(cluster)
        assert qos.agreement_fraction == pytest.approx(1.0)
        assert qos.good_fraction == pytest.approx(1.0)

    def test_partial_agreement_window(self) -> None:
        cluster = scripted_cluster()
        cluster.start_all()          # outputs: 0, 1, 2 (disagreement)
        cluster.run_until(5.0)
        for pid in cluster.pids:
            cluster.process(pid)._output(0)  # agree from t=5
        cluster.run_until(10.0)
        qos = measure_qos(cluster)
        assert qos.agreement_fraction == pytest.approx(0.5)

    def test_good_fraction_excludes_dead_leader_time(self) -> None:
        cluster = scripted_cluster()
        cluster.start_all()
        for pid in cluster.pids:
            cluster.process(pid)._output(2)
        cluster.run_until(4.0)
        cluster.crash(2)             # everyone still trusts 2 (agreement,
        cluster.run_until(10.0)      # but not "good") until the end
        qos = measure_qos(cluster)
        assert qos.agreement_fraction == pytest.approx(1.0)
        assert qos.good_fraction == pytest.approx(0.4)

    def test_window_validation(self) -> None:
        cluster = scripted_cluster()
        with pytest.raises(ValueError):
            measure_qos(cluster, start=5.0, end=5.0)


class TestDetectionTimes:
    def test_detection_measured_from_crash_to_final_departure(self) -> None:
        cluster = scripted_cluster()
        cluster.start_all()
        for pid in cluster.pids:
            cluster.process(pid)._output(2)
        cluster.run_until(4.0)
        cluster.crash(2)
        cluster.run_until(7.0)
        cluster.process(0)._output(0)
        cluster.process(1)._output(0)
        cluster.run_until(10.0)
        qos = measure_qos(cluster)
        assert qos.detection_times == {2: pytest.approx(3.0)}
        assert qos.worst_detection_time == pytest.approx(3.0)

    def test_flap_back_counts_against_detector(self) -> None:
        cluster = scripted_cluster()
        cluster.start_all()
        for pid in cluster.pids:
            cluster.process(pid)._output(2)
        cluster.run_until(4.0)
        cluster.crash(2)
        cluster.run_until(5.0)
        cluster.process(0)._output(0)  # leaves...
        cluster.run_until(6.0)
        cluster.process(0)._output(2)  # ...flaps back to the dead leader
        cluster.run_until(8.0)
        cluster.process(0)._output(0)  # final departure
        cluster.process(1)._output(0)
        cluster.run_until(10.0)
        qos = measure_qos(cluster)
        assert qos.detection_times[2] == pytest.approx(4.0)

    def test_censored_when_never_departing(self) -> None:
        cluster = scripted_cluster()
        cluster.start_all()
        for pid in cluster.pids:
            cluster.process(pid)._output(2)
        cluster.run_until(4.0)
        cluster.crash(2)
        cluster.run_until(10.0)
        qos = measure_qos(cluster)
        assert qos.detection_times[2] == pytest.approx(6.0), \
            "censored at the window end"

    def test_no_crashes_no_detection_entries(self) -> None:
        cluster = scripted_cluster()
        cluster.start_all()
        cluster.run_until(5.0)
        qos = measure_qos(cluster)
        assert qos.detection_times == {}
        assert qos.worst_detection_time is None


class TestEmptyHistoryWitnesses:
    """A process with no output in the window must not zero the fractions."""

    def test_unstarted_process_does_not_zero_agreement(self) -> None:
        cluster = scripted_cluster()
        for pid in (0, 1):           # pid 2 never starts: empty history
            cluster.process(pid).start()
            cluster.process(pid)._output(1)
        cluster.run_until(10.0)
        qos = measure_qos(cluster)
        assert qos.agreement_fraction == pytest.approx(1.0)
        assert qos.good_fraction == pytest.approx(1.0)

    def test_all_empty_histories_yield_zero_fractions(self) -> None:
        cluster = scripted_cluster()
        cluster.run_until(5.0)       # nobody ever started
        qos = measure_qos(cluster)
        assert qos.agreement_fraction == 0.0
        assert qos.good_fraction == 0.0

    def test_midwindow_start_still_denies_early_agreement(self) -> None:
        cluster = scripted_cluster()
        for pid in (0, 1):
            cluster.process(pid).start()
            cluster.process(pid)._output(1)
        cluster.run_until(5.0)
        cluster.process(2).start()   # joins halfway through the window
        cluster.process(2)._output(1)
        cluster.run_until(10.0)
        qos = measure_qos(cluster)
        assert qos.agreement_fraction == pytest.approx(0.5)


class TestQoSUnderFaultPlans:
    """Known-answer QoS under degraded and flapping link plans."""

    @staticmethod
    def _run(faults: str, seed: int = 3):
        scenario = OmegaScenario(
            algorithm="comm-efficient", n=4, system="source", source=2,
            seed=seed, horizon=120.0, faults=faults, trace=True,
            timings=LinkTimings(gst=5.0))
        cluster = scenario.build()
        cluster.start_all()
        cluster.run_until(120.0)
        return cluster

    _STORM = ("degrade(start=20.0,end=60.0,"
              "pairs=0>1;0>2;0>3;1>0;1>2;1>3;2>0;2>1;2>3;3>0;3>1;3>2,"
              "loss=0.5,delay=0.5)")
    _FLAP = ("flap(start=20.0,end=60.0,pairs=2>0;2>1;2>3,"
             "period=10.0,up=0.2)")

    def test_degrade_storm_dents_agreement_then_heals(self) -> None:
        cluster = self._run(self._STORM)
        storm = measure_qos(cluster, start=20.0, end=60.0)
        calm = measure_qos(cluster, start=90.0, end=120.0)
        assert storm.agreement_fraction < 1.0
        assert calm.agreement_fraction > 0.95
        assert storm.good_fraction <= storm.agreement_fraction

    def test_flapping_source_recovers_after_window(self) -> None:
        cluster = self._run(self._FLAP)
        whole = measure_qos(cluster, start=20.0, end=120.0)
        calm = measure_qos(cluster, start=80.0, end=120.0)
        assert whole.total_changes > 0
        assert calm.agreement_fraction > 0.95

    def test_fault_plan_qos_is_deterministic(self) -> None:
        first = measure_qos(self._run(self._STORM), start=20.0, end=120.0)
        second = measure_qos(self._run(self._STORM), start=20.0, end=120.0)
        assert first.agreement_fraction == second.agreement_fraction
        assert first.good_fraction == second.good_fraction
        assert first.changes_by_pid == second.changes_by_pid


class TestPacketAccountingDeterminism:
    """Same seed => byte-identical packet tallies, at any parallelism."""

    def test_scenario_tallies_are_reproducible(self) -> None:
        from repro.harness.bench import _PacketTally
        from repro.obs.observer import capture

        def tally() -> dict:
            scenario = OmegaScenario(algorithm="comm-efficient", n=4,
                                     system="source", source=2, seed=5,
                                     horizon=60.0)
            with capture(_PacketTally):
                outcome = scenario.run()
            network = outcome.cluster.network
            return network.hub.first(_PacketTally).block(network.mtu)

        assert tally() == tally()

    def test_e17_results_identical_across_jobs(self) -> None:
        from repro.harness.bench import default_suite, run_suite

        cases = [case for case in default_suite(seed=7, quick=True)
                 if case.experiment == "e17"]
        assert cases, "quick suite must include e17 rows"
        serial = run_suite(cases, jobs=1)
        parallel = run_suite(cases, jobs=2)
        strip = lambda results: [  # noqa: E731 - local projection
            {key: value for key, value in result.items() if key != "timing"}
            for result in results]
        assert strip(serial) == strip(parallel)


class TestOnRealRuns:
    def test_comm_efficient_qos_is_high(self) -> None:
        scenario = OmegaScenario(algorithm="comm-efficient", n=5,
                                 system="source", source=1, seed=4,
                                 horizon=200.0, trace=True)
        cluster = scenario.build()
        cluster.start_all()
        cluster.run_until(200.0)
        assert analyze_omega_run(cluster).omega_holds
        qos = measure_qos(cluster, start=50.0)
        assert qos.agreement_fraction > 0.95
        assert qos.good_fraction > 0.95

    def test_flap_counts_match_checker(self) -> None:
        scenario = OmegaScenario(algorithm="source", n=4, system="source",
                                 source=0, seed=2, horizon=100.0, trace=True)
        cluster = scenario.build()
        cluster.start_all()
        cluster.run_until(100.0)
        qos = measure_qos(cluster)
        report = analyze_omega_run(cluster)
        assert qos.total_changes == report.total_changes
